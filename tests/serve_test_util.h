// Shared plumbing for the serve tests: a minimal blocking unix-socket
// client speaking the newline-delimited wire protocol, plus file helpers.

#ifndef KSYM_TESTS_SERVE_TEST_UTIL_H_
#define KSYM_TESTS_SERVE_TEST_UTIL_H_

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace ksym {
namespace serve_test {

inline std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

inline std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

inline void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// One connection to a running Server. Every method is blocking; a failed
/// socket operation surfaces as an empty response (callers assert on it).
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path) {
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) return;
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { Close(); }

  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Sends raw bytes (no framing added). Returns false on a socket error.
  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line (newline stripped). Empty on EOF/error.
  std::string RecvLine() {
    for (;;) {
      const size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Sends one request line and reads its response line.
  std::string RoundTrip(const std::string& line) {
    if (!SendRaw(line + "\n")) return "";
    return RecvLine();
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace serve_test
}  // namespace ksym

#endif  // KSYM_TESTS_SERVE_TEST_UTIL_H_
