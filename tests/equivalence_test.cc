// Tests for the distinct-image characterization of k-symmetry (the paper's
// conclusion) and its equivalence with the orbit-size definition.

#include "ksym/equivalence.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ksym/anonymizer.h"
#include "ksym/verifier.h"

namespace ksym {
namespace {

TEST(EquivalenceTest, WitnessOnCycle) {
  // C_6 is vertex-transitive: every vertex has witnesses up to k = 6.
  const Graph c6 = MakeCycle(6);
  for (uint32_t k : {2u, 3u, 6u}) {
    const DistinctImageWitness witness = FindDistinctImageWitness(c6, 0, k);
    ASSERT_EQ(witness.automorphisms.size(), k - 1) << "k=" << k;
    EXPECT_TRUE(VerifyWitness(c6, witness));
  }
  // But not k = 7 (only 6 vertices in the orbit).
  const DistinctImageWitness too_big = FindDistinctImageWitness(c6, 0, 7);
  EXPECT_TRUE(too_big.automorphisms.empty());
}

TEST(EquivalenceTest, RigidVertexHasNoWitness) {
  const Graph star = MakeStar(5);
  // The hub is rigid (singleton orbit): no nontrivial automorphism moves it.
  const DistinctImageWitness witness = FindDistinctImageWitness(star, 0, 2);
  EXPECT_TRUE(witness.automorphisms.empty());
  // Leaves have witnesses.
  const DistinctImageWitness leaf = FindDistinctImageWitness(star, 1, 4);
  EXPECT_EQ(leaf.automorphisms.size(), 3u);
  EXPECT_TRUE(VerifyWitness(star, leaf));
}

TEST(EquivalenceTest, VerifyWitnessRejectsBadFamilies) {
  const Graph c4 = MakeCycle(4);
  DistinctImageWitness witness;
  witness.vertex = 0;
  // Identity is not allowed.
  witness.automorphisms = {Permutation::Identity(4)};
  EXPECT_FALSE(VerifyWitness(c4, witness));
  // Non-automorphism rejected.
  witness.automorphisms = {Permutation({1, 0, 2, 3})};
  EXPECT_FALSE(VerifyWitness(c4, witness));
  // Duplicate images rejected: two automorphisms both mapping 0 -> 2.
  witness.automorphisms = {Permutation({2, 3, 0, 1}),
                           Permutation({2, 1, 0, 3})};
  EXPECT_FALSE(VerifyWitness(c4, witness));
  // A valid family passes.
  witness.automorphisms = {Permutation({1, 2, 3, 0}),
                           Permutation({2, 3, 0, 1})};
  EXPECT_TRUE(VerifyWitness(c4, witness));
}

TEST(EquivalenceTest, CharacterizationMatchesOrbitDefinition) {
  // The conclusion's claim, machine-checked: the distinct-image
  // characterization holds iff every orbit has >= k members.
  Rng rng(233);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = ErdosRenyiGnm(18, 26, rng);
    for (uint32_t k : {2u, 3u}) {
      EXPECT_EQ(SatisfiesDistinctImageCharacterization(g, k),
                IsKSymmetric(g, k))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(EquivalenceTest, AnonymizedGraphsSatisfyCharacterization) {
  Rng rng(239);
  const Graph g = ErdosRenyiGnm(20, 30, rng);
  for (uint32_t k : {2u, 4u}) {
    AnonymizationOptions options;
    options.k = k;
    const auto release = Anonymize(g, options);
    ASSERT_TRUE(release.ok());
    EXPECT_TRUE(SatisfiesDistinctImageCharacterization(release->graph, k));
  }
}

TEST(EquivalenceTest, KOneIsVacuous) {
  EXPECT_TRUE(SatisfiesDistinctImageCharacterization(MakeStar(4), 1));
}

}  // namespace
}  // namespace ksym
