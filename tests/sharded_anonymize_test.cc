// The tentpole acceptance test (DESIGN.md §11): AnonymizeSharded, chained
// manifest-in → anonymized shard set out, must produce a release that is
// *byte-identical* after `merge` to WriteReleaseCsrFile of the in-memory
// Anonymize run — across shard counts, thread counts, and residency
// budgets — with matching refinement trace hash and cost counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "ksym/anonymizer.h"
#include "ksym/release_io.h"
#include "ksym/sharded_anonymizer.h"
#include "shard/partitioner.h"
#include "shard/sharded_graph.h"

namespace ksym {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

ExecutionContext ForcedParallelContext(uint32_t threads) {
  ExecutionContext context(threads);
  context.splitter_grain = 0;
  context.affected_grain = 0;
  return context;
}

/// In-memory reference: Anonymize (TDV path, same as the sharded pipeline)
/// and the binary release bytes it would publish.
struct Reference {
  AnonymizationResult result;
  std::vector<char> release_bytes;
};

Reference MakeReference(const Graph& graph, const AnonymizationOptions& options,
                        const std::string& tag) {
  Reference ref;
  auto result = Anonymize(graph, options);
  EXPECT_TRUE(result.ok()) << result.status();
  ref.result = std::move(*result);
  const std::string path = TempPath("ref_" + tag + ".ksymcsr");
  EXPECT_TRUE(WriteReleaseCsrFile(MakeReleaseTriple(ref.result), path).ok());
  ref.release_bytes = ReadFileBytes(path);
  return ref;
}

/// Runs the full out-of-core chain — split → AnonymizeSharded → merge →
/// re-emit as one .ksymcsr — and byte-compares against the reference.
void CheckShardedMatches(const Graph& graph, const Reference& ref,
                         const ShardedAnonymizationOptions& options,
                         uint32_t shards, size_t budget,
                         const std::string& tag) {
  const std::string prefix = TempPath("sa_in_" + tag);
  PartitionOptions split;
  split.num_shards = shards;
  const auto manifest = Partitioner::Split(graph, {}, split, prefix);
  ASSERT_TRUE(manifest.ok()) << manifest.status();

  ShardedGraphOptions open_options;
  open_options.max_resident_bytes = budget;
  auto sharded = ShardedGraph::Open(prefix + ".manifest", open_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  const std::string out_prefix = TempPath("sa_out_" + tag);
  const auto result = AnonymizeSharded(*sharded, options, out_prefix);
  ASSERT_TRUE(result.ok()) << result.status();

  // Trace hash and Algorithm 1 cost accounting must match exactly.
  EXPECT_EQ(result->refinement_trace, ref.result.refinement_trace);
  EXPECT_EQ(result->original_vertices, ref.result.original_vertices);
  EXPECT_EQ(result->vertices_added, ref.result.vertices_added);
  EXPECT_EQ(result->edges_added, ref.result.edges_added);
  EXPECT_EQ(result->copy_operations, ref.result.copy_operations);
  EXPECT_EQ(result->orbits_copied, ref.result.orbits_copied);
  EXPECT_EQ(result->orbits_excluded, ref.result.orbits_excluded);
  EXPECT_EQ(result->orbits_satisfied, ref.result.orbits_satisfied);
  EXPECT_EQ(result->released_vertices, ref.result.graph.NumVertices());
  EXPECT_EQ(result->released_edges, ref.result.graph.NumEdges());
  EXPECT_GT(result->residency.loads, 0u);

  // Merge the anonymized shard set and re-emit: byte-identical to the
  // in-memory release file.
  auto merged = MergeShards(out_prefix + ".manifest");
  ASSERT_TRUE(merged.ok()) << merged.status();
  const std::string merged_path = TempPath("sa_merged_" + tag + ".ksymcsr");
  ASSERT_TRUE(WriteCsrFile(*merged, merged_path).ok());
  EXPECT_EQ(ReadFileBytes(merged_path), ref.release_bytes)
      << "merged sharded release differs from in-memory bytes";
}

TEST(ShardedAnonymizeTest, ByteIdenticalAcrossShardsThreadsAndBudgets) {
  Rng rng(77);
  const Graph graph = ErdosRenyiGnm(90, 260, rng);

  AnonymizationOptions in_memory;
  in_memory.k = 3;
  in_memory.use_total_degree_partition = true;
  const Reference ref = MakeReference(graph, in_memory, "er");

  for (uint32_t shards : {1u, 2u, 4u}) {
    for (uint32_t threads : {1u, 2u, 4u}) {
      for (size_t budget : {size_t{256} << 20, size_t{1}}) {
        SCOPED_TRACE(testing::Message() << "shards=" << shards << " threads="
                                        << threads << " budget=" << budget);
        const ExecutionContext context = ForcedParallelContext(threads);
        ShardedAnonymizationOptions options;
        options.k = 3;
        options.context = &context;
        CheckShardedMatches(graph, ref, options, shards, budget,
                            "er_s" + std::to_string(shards) + "_t" +
                                std::to_string(threads) + "_b" +
                                std::to_string(budget == 1));
      }
    }
  }
}

TEST(ShardedAnonymizeTest, ByteIdenticalOnBarabasiAlbert) {
  Rng rng(1234);
  const Graph graph = BarabasiAlbert(150, 3, rng);

  AnonymizationOptions in_memory;
  in_memory.k = 2;
  in_memory.use_total_degree_partition = true;
  const Reference ref = MakeReference(graph, in_memory, "ba");

  ShardedAnonymizationOptions options;
  options.k = 2;
  CheckShardedMatches(graph, ref, options, /*shards=*/3, /*budget=*/1, "ba");
}

TEST(ShardedAnonymizeTest, HubExclusionMatchesInMemoryRequirement) {
  Rng rng(9);
  const Graph graph = BarabasiAlbert(120, 2, rng);
  const double fraction = 0.05;

  AnonymizationOptions in_memory;
  in_memory.k = 2;
  in_memory.use_total_degree_partition = true;
  in_memory.requirement = HubExclusionRequirement(
      2, DegreeThresholdForExcludedFraction(graph, fraction));
  const Reference ref = MakeReference(graph, in_memory, "hub");
  ASSERT_GT(ref.result.orbits_excluded, 0u);

  ShardedAnonymizationOptions options;
  options.k = 2;
  options.exclude_hubs_fraction = fraction;
  CheckShardedMatches(graph, ref, options, /*shards=*/2,
                      /*budget=*/size_t{256} << 20, "hub");
}

TEST(ShardedAnonymizeTest, OutputShardCountOverrideStillMerges) {
  Rng rng(5);
  const Graph graph = ErdosRenyiGnm(60, 150, rng);

  AnonymizationOptions in_memory;
  in_memory.k = 2;
  in_memory.use_total_degree_partition = true;
  const Reference ref = MakeReference(graph, in_memory, "osc");

  ShardedAnonymizationOptions options;
  options.k = 2;
  options.output_shards = 5;
  CheckShardedMatches(graph, ref, options, /*shards=*/2, /*budget=*/1, "osc");
}

TEST(ShardedAnonymizeTest, BinaryReleaseRoundTrips) {
  Rng rng(31);
  const Graph graph = ErdosRenyiGnm(70, 200, rng);

  AnonymizationOptions in_memory;
  in_memory.k = 2;
  in_memory.use_total_degree_partition = true;
  const Reference ref = MakeReference(graph, in_memory, "rt");

  const std::string path = TempPath("rt_release.ksymcsr");
  ASSERT_TRUE(WriteReleaseCsrFile(MakeReleaseTriple(ref.result), path).ok());
  auto release = ReadReleaseCsrFile(path);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->original_vertices, ref.result.original_vertices);
  EXPECT_EQ(release->partition, ref.result.partition);
  EXPECT_EQ(release->partition.cell_of, ref.result.partition.cell_of);
  EXPECT_EQ(release->graph.NumVertices(), ref.result.graph.NumVertices());
  EXPECT_EQ(release->graph.NumEdges(), ref.result.graph.NumEdges());

  // Auto-detection picks the binary reader for .ksymcsr releases.
  auto auto_release = ReadReleaseAuto(path);
  ASSERT_TRUE(auto_release.ok()) << auto_release.status();
  EXPECT_EQ(auto_release->original_vertices, ref.result.original_vertices);
}

}  // namespace
}  // namespace ksym
