// Tests for the orbit copying operation (Definition 3, Lemmas 1-3).

#include "ksym/orbit_copy.h"

#include <gtest/gtest.h>

#include "aut/isomorphism.h"
#include "aut/orbits.h"
#include "graph/generators.h"
#include "ksym/verifier.h"

namespace ksym {
namespace {

// The running example of the paper's Figure 3(a): orbits
// V1 = {v1,v2}, V2 = {v3}, V3 = {v4,v5}, V4 = {v6,v7}, V5 = {v8}
// (1-indexed); 0-indexed: {0,1}, {2}, {3,4}, {5,6}, {7}.
Graph Figure3Graph() {
  GraphBuilder b(8);
  b.AddEdge(0, 2);  // v1-v3
  b.AddEdge(1, 2);  // v2-v3
  b.AddEdge(2, 3);  // v3-v4
  b.AddEdge(2, 4);  // v3-v5
  b.AddEdge(3, 5);  // v4-v6
  b.AddEdge(4, 6);  // v5-v7
  b.AddEdge(5, 7);  // v6-v8
  b.AddEdge(6, 7);  // v7-v8
  b.AddEdge(3, 4);  // v4-v5 (the orbit has an internal edge)
  return b.Build();
}

TEST(OrbitCopyTest, Figure3OrbitsAreAsInThePaper) {
  const VertexPartition orbits = ComputeAutomorphismPartition(Figure3Graph(), {}, nullptr);
  ASSERT_EQ(orbits.NumCells(), 5u);
  EXPECT_EQ(orbits.cells[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(orbits.cells[1], (std::vector<VertexId>{2}));
  EXPECT_EQ(orbits.cells[2], (std::vector<VertexId>{3, 4}));
  EXPECT_EQ(orbits.cells[3], (std::vector<VertexId>{5, 6}));
  EXPECT_EQ(orbits.cells[4], (std::vector<VertexId>{7}));
}

TEST(OrbitCopyTest, CopyingV3MatchesFigure3b) {
  // Copying V3 = {v4, v5} introduces v4', v5' with edges to v3 (external),
  // v6/v7 (external) and the mirrored internal edge v4'-v5'.
  const Graph g = Figure3Graph();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  MutableGraph mg(g);
  TrackedPartition partition(orbits);
  const auto copies = OrbitCopy(mg, partition, 2, orbits.cells[2]);
  ASSERT_EQ(copies.size(), 2u);
  const VertexId v4c = copies[0];
  const VertexId v5c = copies[1];
  const Graph result = mg.Freeze();
  EXPECT_EQ(result.NumVertices(), 10u);
  // External adjacency preserved exactly (rule 1).
  EXPECT_TRUE(result.HasEdge(v4c, 2));
  EXPECT_TRUE(result.HasEdge(v5c, 2));
  EXPECT_TRUE(result.HasEdge(v4c, 5));
  EXPECT_TRUE(result.HasEdge(v5c, 6));
  // Internal edge mirrored between copies (rule 2).
  EXPECT_TRUE(result.HasEdge(v4c, v5c));
  // No edges between copies and originals of the cell.
  EXPECT_FALSE(result.HasEdge(v4c, 3));
  EXPECT_FALSE(result.HasEdge(v4c, 4));
  EXPECT_FALSE(result.HasEdge(v5c, 3));
  EXPECT_FALSE(result.HasEdge(v5c, 4));
  // 4 vertices in the augmented cell.
  EXPECT_EQ(partition.Cell(2).size(), 4u);
}

TEST(OrbitCopyTest, ResultIsSubAutomorphismPartition) {
  // Lemma 1: after one copy, the augmented partition is a (cell-wise)
  // sub-automorphism partition of the new graph.
  const Graph g = Figure3Graph();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  for (uint32_t cell = 0; cell < orbits.NumCells(); ++cell) {
    MutableGraph mg(g);
    TrackedPartition partition(orbits);
    OrbitCopy(mg, partition, cell, orbits.cells[cell]);
    EXPECT_TRUE(IsCellwiseSubAutomorphismPartition(
        mg.Freeze(), partition.ToVertexPartition()))
        << "cell " << cell;
  }
}

TEST(OrbitCopyTest, RepeatedCopiesKeepProperty) {
  // Lemma 2: N copies of the same cell.
  const Graph g = Figure3Graph();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  MutableGraph mg(g);
  TrackedPartition partition(orbits);
  for (int rep = 0; rep < 3; ++rep) {
    OrbitCopy(mg, partition, 0, orbits.cells[0]);
  }
  EXPECT_EQ(partition.Cell(0).size(), 8u);
  EXPECT_TRUE(IsCellwiseSubAutomorphismPartition(
      mg.Freeze(), partition.ToVertexPartition()));
}

TEST(OrbitCopyTest, OrderIndependenceUpToIsomorphism) {
  // Lemma 3: applying the same multiset of copy operations in different
  // orders yields isomorphic graphs.
  const Graph g = Figure3Graph();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);

  MutableGraph g1(g);
  TrackedPartition p1(orbits);
  OrbitCopy(g1, p1, 0, orbits.cells[0]);
  OrbitCopy(g1, p1, 2, orbits.cells[2]);
  OrbitCopy(g1, p1, 4, orbits.cells[4]);

  MutableGraph g2(g);
  TrackedPartition p2(orbits);
  OrbitCopy(g2, p2, 4, orbits.cells[4]);
  OrbitCopy(g2, p2, 2, orbits.cells[2]);
  OrbitCopy(g2, p2, 0, orbits.cells[0]);

  EXPECT_TRUE(AreIsomorphic(g1.Freeze(), g2.Freeze()));
}

TEST(OrbitCopyTest, CopyCountsDegreesPreserved) {
  // Every copy has the same degree as its original.
  const Graph g = Figure3Graph();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  MutableGraph mg(g);
  TrackedPartition partition(orbits);
  const auto copies = OrbitCopy(mg, partition, 2, orbits.cells[2]);
  const Graph result = mg.Freeze();
  for (size_t i = 0; i < copies.size(); ++i) {
    EXPECT_EQ(result.Degree(copies[i]), g.Degree(orbits.cells[2][i]));
  }
}

TEST(OrbitCopyTest, SingletonCellCopy) {
  // Copying a singleton orbit duplicates the vertex with its exact
  // neighbourhood (the star-leaf case).
  const Graph star = MakeStar(4);  // Hub 0; leaves 1, 2, 3.
  const VertexPartition orbits = ComputeAutomorphismPartition(star, {}, nullptr);
  // Orbits: {0}, {1,2,3}.
  MutableGraph mg(star);
  TrackedPartition partition(orbits);
  const uint32_t hub_cell = orbits.cell_of[0];
  const auto copies = OrbitCopy(mg, partition, hub_cell, orbits.cells[hub_cell]);
  const Graph result = mg.Freeze();
  ASSERT_EQ(copies.size(), 1u);
  EXPECT_EQ(result.Degree(copies[0]), 3u);  // Mirrors the hub.
  for (VertexId leaf : {1u, 2u, 3u}) {
    EXPECT_TRUE(result.HasEdge(copies[0], leaf));
  }
}

TEST(TrackedPartitionTest, ProvenanceCollapsesToOriginals) {
  const Graph g = MakeStar(3);
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  MutableGraph mg(g);
  TrackedPartition partition(orbits);
  const uint32_t leaf_cell = orbits.cell_of[1];
  const auto first = OrbitCopy(mg, partition, leaf_cell, orbits.cells[leaf_cell]);
  // Copy the copies' cell again using originals as unit.
  const auto second = OrbitCopy(mg, partition, leaf_cell, orbits.cells[leaf_cell]);
  for (VertexId v : first) {
    EXPECT_FALSE(partition.IsOriginal(v));
    EXPECT_TRUE(partition.IsOriginal(partition.OriginalOf(v)));
  }
  for (VertexId v : second) {
    EXPECT_TRUE(partition.IsOriginal(partition.OriginalOf(v)));
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(partition.IsOriginal(v));
  }
}

}  // namespace
}  // namespace ksym
