// Tests for permutations, union-find and orbit computation.

#include "perm/permutation.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "perm/union_find.h"

namespace ksym {
namespace {

TEST(PermutationTest, IdentityProperties) {
  const Permutation id = Permutation::Identity(5);
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_EQ(id.ToCycleString(), "()");
  for (VertexId x = 0; x < 5; ++x) EXPECT_EQ(id.Image(x), x);
}

TEST(PermutationTest, ComposeAppliesLeftThenRight) {
  // f = (0 1), g = (1 2). (f*g)(0) = g(f(0)) = g(1) = 2.
  const Permutation f({1, 0, 2});
  const Permutation g({0, 2, 1});
  const Permutation fg = f.Compose(g);
  EXPECT_EQ(fg.Image(0), 2u);
  EXPECT_EQ(fg.Image(1), 0u);
  EXPECT_EQ(fg.Image(2), 1u);
}

TEST(PermutationTest, InverseCancels) {
  const Permutation p({2, 0, 3, 1});
  EXPECT_TRUE(p.Compose(p.Inverse()).IsIdentity());
  EXPECT_TRUE(p.Inverse().Compose(p).IsIdentity());
}

TEST(PermutationTest, CycleDecomposition) {
  const Permutation p({1, 2, 0, 4, 3, 5});  // (0 1 2)(3 4)
  const auto cycles = p.Cycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(cycles[1], (std::vector<VertexId>{3, 4}));
  EXPECT_EQ(p.ToCycleString(), "(0 1 2)(3 4)");
}

TEST(PermutationTest, ValidityCheck) {
  EXPECT_TRUE(IsValidPermutation({0, 1, 2}));
  EXPECT_TRUE(IsValidPermutation({}));
  EXPECT_FALSE(IsValidPermutation({0, 0, 2}));
  EXPECT_FALSE(IsValidPermutation({0, 3, 1}));
}

TEST(AutomorphismCheckTest, RotationOfCycle) {
  const Graph c4 = MakeCycle(4);
  EXPECT_TRUE(IsAutomorphism(c4, Permutation({1, 2, 3, 0})));  // Rotation.
  EXPECT_TRUE(IsAutomorphism(c4, Permutation({0, 3, 2, 1})));  // Reflection.
  EXPECT_FALSE(IsAutomorphism(c4, Permutation({1, 0, 2, 3})));  // Swap.
}

TEST(AutomorphismCheckTest, SizeMismatchIsFalse) {
  EXPECT_FALSE(IsAutomorphism(MakeCycle(4), Permutation::Identity(3)));
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // Already merged.
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(0, 2));
  EXPECT_EQ(uf.SetSize(0), 2u);
  EXPECT_EQ(uf.SetSize(4), 1u);
}

TEST(UnionFindTest, TransitiveMerge) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Same(0, 4));
  EXPECT_EQ(uf.SetSize(0), 5u);
  EXPECT_EQ(uf.NumSets(), 2u);
}

TEST(PointOrbitsTest, NoGeneratorsAllSingletons) {
  const auto orbits = PointOrbits(4, {});
  for (VertexId x = 0; x < 4; ++x) EXPECT_EQ(orbits[x], x);
}

TEST(PointOrbitsTest, RotationMakesOneOrbit) {
  const auto orbits = PointOrbits(4, {Permutation({1, 2, 3, 0})});
  for (VertexId x = 0; x < 4; ++x) EXPECT_EQ(orbits[x], 0u);
}

TEST(PointOrbitsTest, RepsAreOrbitMinima) {
  // (1 3) and (2 4): orbits {0}, {1,3}, {2,4}.
  const auto orbits =
      PointOrbits(5, {Permutation({0, 3, 2, 1, 4}), Permutation({0, 1, 4, 3, 2})});
  EXPECT_EQ(orbits[0], 0u);
  EXPECT_EQ(orbits[1], 1u);
  EXPECT_EQ(orbits[3], 1u);
  EXPECT_EQ(orbits[2], 2u);
  EXPECT_EQ(orbits[4], 2u);
}

}  // namespace
}  // namespace ksym
