// Tests for the network quotient and its contrast with the backbone
// (the paper's Figure 6).

#include "ksym/quotient.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ksym/backbone.h"

namespace ksym {
namespace {

TEST(QuotientTest, VertexTransitiveGraphCollapsesToAPoint) {
  const Graph c6 = MakeCycle(6);
  const VertexPartition orbits = ComputeAutomorphismPartition(c6, {}, nullptr);
  const QuotientResult q = ComputeQuotient(c6, orbits);
  EXPECT_EQ(q.graph.NumVertices(), 1u);
  EXPECT_EQ(q.graph.NumEdges(), 0u);
  EXPECT_TRUE(q.has_internal_edges[0]);
  EXPECT_EQ(q.cell_size[0], 6u);
}

TEST(QuotientTest, StarCollapsesToAnEdge) {
  const Graph star = MakeStar(9);
  const VertexPartition orbits = ComputeAutomorphismPartition(star, {}, nullptr);
  const QuotientResult q = ComputeQuotient(star, orbits);
  EXPECT_EQ(q.graph.NumVertices(), 2u);
  EXPECT_EQ(q.graph.NumEdges(), 1u);
  EXPECT_FALSE(q.has_internal_edges[0]);
  EXPECT_FALSE(q.has_internal_edges[1]);
}

TEST(QuotientTest, RigidGraphIsItself) {
  // Orbits all singletons: quotient == graph (no self-loops).
  const Graph p4 = MakePath(4);
  // P4 orbits: {0,3}, {1,2} — not rigid; use the asymmetric spider.
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  b.AddEdge(0, 4);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  const Graph spider = b.Build();
  const VertexPartition orbits = ComputeAutomorphismPartition(spider, {}, nullptr);
  ASSERT_EQ(orbits.NumCells(), 7u);
  const QuotientResult q = ComputeQuotient(spider, orbits);
  EXPECT_EQ(q.graph.NumVertices(), 7u);
  EXPECT_EQ(q.graph.NumEdges(), spider.NumEdges());
  (void)p4;
}

TEST(QuotientTest, Figure6BackboneKeepsModulesQuotientMerges) {
  // Figure 6: a graph with two isomorphic multi-orbit substructures S1, S2.
  // The backbone preserves both (modular information); the quotient merges
  // them. Construction: hub 0 with two pendant 2-paths (S1 = 1-2,
  // S2 = 3-4); orbits {0}, {1,3}, {2,4}.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(3, 4);
  const Graph g = b.Build();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  ASSERT_EQ(orbits.NumCells(), 3u);

  // Quotient: 3 super-vertices — S1 and S2 fused into cell-level path.
  const QuotientResult q = ComputeQuotient(g, orbits);
  EXPECT_EQ(q.graph.NumVertices(), 3u);

  // Backbone: nothing reduces (each arm spans two orbits, and within each
  // orbit the members attach to different parents), so both modules stay.
  const BackboneResult backbone = ComputeBackbone(g, orbits, nullptr);
  EXPECT_EQ(backbone.graph.NumVertices(), 5u);
  EXPECT_GT(backbone.graph.NumVertices(), q.graph.NumVertices());
}

TEST(QuotientTest, InternalEdgeFlagTracksInducedEdges) {
  // Orbit {3,4} of the Figure 3 graph has the internal edge (3,4).
  GraphBuilder b(8);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 4);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 6);
  b.AddEdge(5, 7);
  b.AddEdge(6, 7);
  const Graph g = b.Build();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  const QuotientResult q = ComputeQuotient(g, orbits);
  EXPECT_TRUE(q.has_internal_edges[orbits.cell_of[3]]);
  EXPECT_FALSE(q.has_internal_edges[orbits.cell_of[0]]);
}

TEST(QuotientTest, QuotientNeverLargerThanBackbone) {
  Rng rng(229);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ErdosRenyiGnm(24, 30, rng);
    const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
    const QuotientResult q = ComputeQuotient(g, orbits);
    const BackboneResult backbone = ComputeBackbone(g, orbits, nullptr);
    EXPECT_LE(q.graph.NumVertices(), backbone.graph.NumVertices());
  }
}

}  // namespace
}  // namespace ksym
