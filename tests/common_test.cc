// Tests for the common runtime: Status/Result, RNG, string utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str.h"

namespace ksym {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kUnimplemented,
        StatusCode::kIoError, StatusCode::kInfeasible}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 400);  // ~4 sigma.
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled.begin(), shuffled.end());
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RngTest, IndexedForkDoesNotAdvanceParent) {
  Rng a(31);
  Rng b(31);
  (void)a.Fork(0);
  (void)a.Fork(17);
  // The parent stream is untouched by any number of indexed forks.
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, IndexedForkIsOrderIndependent) {
  // Fork(i) is a pure function of (state, index): taking the forks in any
  // order — or repeatedly — yields identical streams.
  Rng a(37);
  Rng fork2_first = a.Fork(2);
  Rng fork0_first = a.Fork(0);
  Rng fork0_again = a.Fork(0);
  Rng fork2_again = a.Fork(2);
  for (int i = 0; i < 16; ++i) {
    const uint64_t v0 = fork0_first.Next();
    const uint64_t v2 = fork2_first.Next();
    EXPECT_EQ(v0, fork0_again.Next());
    EXPECT_EQ(v2, fork2_again.Next());
    EXPECT_NE(v0, v2);  // Distinct indices give distinct streams.
  }
}

TEST(RngTest, IndexedForkDependsOnParentState) {
  // Advancing the parent changes what its indexed forks produce — Fork(i)
  // splits the *current* state, it is not a global function of the seed.
  Rng a(41);
  Rng before = a.Fork(5);
  (void)a.Next();
  Rng after = a.Fork(5);
  EXPECT_NE(before.Next(), after.Next());
}

TEST(RngTest, IndexedForkAdjacentIndicesDecorrelated) {
  // Smoke check that nearby indices do not produce aligned streams: over a
  // few hundred draws, adjacent forks should collide (almost) never.
  Rng a(43);
  Rng f0 = a.Fork(0);
  Rng f1 = a.Fork(1);
  int collisions = 0;
  for (int i = 0; i < 256; ++i) {
    collisions += f0.Next() == f1.Next();
  }
  EXPECT_LE(collisions, 1);
}

TEST(StrTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrTest, SplitWhitespace) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StrTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t\n "), "");
}

TEST(StrTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX.
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // Overflow.
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

TEST(StrTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("3.25abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StrTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace ksym
