// Tests for the Schreier-Sims stabilizer chain: group orders and membership.

#include "perm/schreier_sims.h"

#include <gtest/gtest.h>

namespace ksym {
namespace {

double Factorial(size_t n) {
  double f = 1.0;
  for (size_t i = 2; i <= n; ++i) f *= static_cast<double>(i);
  return f;
}

TEST(SchreierSimsTest, TrivialGroup) {
  const StabilizerChain chain(5, {});
  EXPECT_EQ(chain.GroupOrder(), 1.0);
  EXPECT_TRUE(chain.Contains(Permutation::Identity(5)));
  EXPECT_FALSE(chain.Contains(Permutation({1, 0, 2, 3, 4})));
}

TEST(SchreierSimsTest, CyclicGroup) {
  // <(0 1 2 3 4)> has order 5.
  const StabilizerChain chain(5, {Permutation({1, 2, 3, 4, 0})});
  EXPECT_EQ(chain.GroupOrder(), 5.0);
  EXPECT_TRUE(chain.Contains(Permutation({2, 3, 4, 0, 1})));  // Square.
  EXPECT_FALSE(chain.Contains(Permutation({1, 0, 2, 3, 4})));
}

TEST(SchreierSimsTest, SymmetricGroupFromTwoGenerators) {
  // S_n = <(0 1), (0 1 2 ... n-1)>.
  for (size_t n : {3, 4, 5, 6, 8}) {
    std::vector<VertexId> transposition(n);
    std::vector<VertexId> cycle(n);
    for (VertexId i = 0; i < n; ++i) {
      transposition[i] = i;
      cycle[i] = (i + 1) % n;
    }
    std::swap(transposition[0], transposition[1]);
    const StabilizerChain chain(
        n, {Permutation(transposition), Permutation(cycle)});
    EXPECT_EQ(chain.GroupOrder(), Factorial(n)) << "S_" << n;
  }
}

TEST(SchreierSimsTest, AlternatingGroup) {
  // A_4 = <(0 1 2), (1 2 3)> has order 12.
  const StabilizerChain chain(
      4, {Permutation({1, 2, 0, 3}), Permutation({0, 2, 3, 1})});
  EXPECT_EQ(chain.GroupOrder(), 12.0);
  // Odd permutations are excluded.
  EXPECT_FALSE(chain.Contains(Permutation({1, 0, 2, 3})));
  EXPECT_TRUE(chain.Contains(Permutation({1, 0, 3, 2})));  // Double swap.
}

TEST(SchreierSimsTest, DihedralGroup) {
  // D_6 on a hexagon: rotation + reflection, order 12.
  const StabilizerChain chain(
      6, {Permutation({1, 2, 3, 4, 5, 0}), Permutation({0, 5, 4, 3, 2, 1})});
  EXPECT_EQ(chain.GroupOrder(), 12.0);
}

TEST(SchreierSimsTest, KleinFourGroup) {
  const StabilizerChain chain(
      4, {Permutation({1, 0, 3, 2}), Permutation({2, 3, 0, 1})});
  EXPECT_EQ(chain.GroupOrder(), 4.0);
}

TEST(SchreierSimsTest, DirectProductOfDisjointSupports) {
  // (0 1) and (2 3 4): order 2 * 3 = 6.
  const StabilizerChain chain(
      5, {Permutation({1, 0, 2, 3, 4}), Permutation({0, 1, 3, 4, 2})});
  EXPECT_EQ(chain.GroupOrder(), 6.0);
}

TEST(SchreierSimsTest, OrbitSizesMultiplyToOrder) {
  const StabilizerChain chain(
      5, {Permutation({1, 0, 2, 3, 4}), Permutation({1, 2, 3, 4, 0})});
  double product = 1.0;
  for (size_t s : chain.OrbitSizes()) product *= static_cast<double>(s);
  EXPECT_EQ(product, chain.GroupOrder());
  EXPECT_EQ(product, Factorial(5));
}

TEST(SchreierSimsTest, MembershipRejectsWrongSize) {
  const StabilizerChain chain(4, {Permutation({1, 0, 2, 3})});
  EXPECT_FALSE(chain.Contains(Permutation::Identity(5)));
}

TEST(SchreierSimsTest, IdentityGeneratorsIgnored) {
  const StabilizerChain chain(
      4, {Permutation::Identity(4), Permutation({1, 0, 2, 3})});
  EXPECT_EQ(chain.GroupOrder(), 2.0);
}

}  // namespace
}  // namespace ksym
