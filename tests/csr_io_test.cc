// Tests for the binary zero-copy CSR format (.ksymcsr): round-trip
// property tests on randomized graphs, golden-file format stability, and
// negative-path fuzzing of every header/section corruption the loader must
// reject cleanly (run under ASan/UBSan in CI — "reject" means a
// descriptive Result error, never a crash or a silent bad load).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "ksym/anonymizer.h"

namespace ksym {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Byte offsets inside the 64-byte header, straight from the format spec
// (DESIGN.md §9). Hardcoded here on purpose: the test pins the layout
// independently of the implementation's header struct.
constexpr size_t kVersionOffset = 8;
constexpr size_t kEndianOffset = 12;
constexpr size_t kNumVerticesOffset = 16;
constexpr size_t kNumNeighborsOffset = 24;
constexpr size_t kHeaderChecksumOffset = 56;
constexpr size_t kHeaderBytes = 64;

template <typename T>
void PatchBytes(std::string* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

/// Recomputes the header checksum after a deliberate header patch, so the
/// test reaches the check *behind* the checksum.
void FixHeaderChecksum(std::string* bytes) {
  PatchBytes(bytes, kHeaderChecksumOffset,
             CsrChecksum(bytes->data(), kHeaderChecksumOffset));
}

/// Assembles a raw .ksymcsr byte string from arbitrary (possibly invalid)
/// arrays with honest checksums — the way to smuggle structurally-broken
/// sections past the checksum layer and hit the structural validator.
std::string AssembleRawCsr(const std::vector<EdgeIndex>& offsets,
                           const std::vector<VertexId>& neighbors,
                           const std::vector<uint64_t>& labels) {
  std::string bytes(kHeaderBytes, '\0');
  std::memcpy(bytes.data(), kCsrMagic, sizeof(kCsrMagic));
  PatchBytes(&bytes, kVersionOffset, kCsrFormatVersion);
  PatchBytes(&bytes, kEndianOffset, uint32_t{0x01020304});
  PatchBytes(&bytes, kNumVerticesOffset,
             static_cast<uint64_t>(offsets.size() - 1));
  PatchBytes(&bytes, kNumNeighborsOffset,
             static_cast<uint64_t>(neighbors.size()));
  PatchBytes(&bytes, 32,
             CsrChecksum(offsets.data(), offsets.size() * sizeof(EdgeIndex)));
  PatchBytes(&bytes, 40, CsrChecksum(neighbors.data(),
                                     neighbors.size() * sizeof(VertexId)));
  PatchBytes(&bytes, 48,
             CsrChecksum(labels.data(), labels.size() * sizeof(uint64_t)));
  FixHeaderChecksum(&bytes);
  auto append = [&bytes](const void* data, size_t size) {
    bytes.append(static_cast<const char*>(data), size);
  };
  append(offsets.data(), offsets.size() * sizeof(EdgeIndex));
  append(neighbors.data(), neighbors.size() * sizeof(VertexId));
  if (neighbors.size() % 2 != 0) bytes.append(sizeof(VertexId), '\0');
  append(labels.data(), labels.size() * sizeof(uint64_t));
  return bytes;
}

/// Expects both load paths to reject `bytes` with an IoError whose message
/// contains `expect_substring`.
void ExpectBothLoadersReject(const std::string& bytes,
                             const std::string& expect_substring,
                             const std::string& tag) {
  const std::string path = TempPath("csr_reject_" + tag + ".ksymcsr");
  WriteFileBytes(path, bytes);
  for (const bool mmap_path : {false, true}) {
    SCOPED_TRACE(tag + (mmap_path ? " [mmap]" : " [owning]"));
    if (mmap_path) {
      const auto loaded = MapCsrFile(path);
      ASSERT_FALSE(loaded.ok());
      EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
      EXPECT_NE(loaded.status().message().find(expect_substring),
                std::string::npos)
          << loaded.status().message();
    } else {
      const auto loaded = ReadCsrFile(path);
      ASSERT_FALSE(loaded.ok());
      EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
      EXPECT_NE(loaded.status().message().find(expect_substring),
                std::string::npos)
          << loaded.status().message();
    }
  }
}

/// A small graph with a known valid file next to it, shared by the
/// corruption tests.
struct WrittenGraph {
  Graph graph;
  std::vector<uint64_t> labels;
  std::string bytes;
};

WrittenGraph MakeWrittenGraph() {
  WrittenGraph out;
  Rng rng(99);
  out.graph = ErdosRenyiGnm(24, 48, rng);
  out.labels.resize(out.graph.NumVertices());
  for (size_t i = 0; i < out.labels.size(); ++i) {
    out.labels[i] = 1000 + 7 * i;
  }
  const std::string path = TempPath("csr_written.ksymcsr");
  EXPECT_TRUE(WriteCsrFile(out.graph, out.labels, path).ok());
  out.bytes = ReadFileBytes(path);
  return out;
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(CsrIoTest, RoundTripRandomGraphsBothPaths) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    const Graph original = (seed % 2 == 0)
                               ? ErdosRenyiGnm(200, 600, rng)
                               : BarabasiAlbert(150, 3, rng);
    std::vector<uint64_t> labels(original.NumVertices());
    for (size_t i = 0; i < labels.size(); ++i) labels[i] = rng.Next();

    const std::string path =
        TempPath("csr_roundtrip_" + std::to_string(seed) + ".ksymcsr");
    ASSERT_TRUE(WriteCsrFile(original, labels, path).ok());

    const auto owned = ReadCsrFile(path);
    ASSERT_TRUE(owned.ok()) << owned.status();
    EXPECT_TRUE(owned->graph == original);
    EXPECT_TRUE(owned->graph.OwnsStorage());
    EXPECT_EQ(owned->labels, labels);
    // Bit-identical CSR arrays, not merely equal graphs.
    ASSERT_EQ(owned->graph.RawOffsets().size(),
              original.RawOffsets().size());
    EXPECT_TRUE(std::equal(owned->graph.RawOffsets().begin(),
                           owned->graph.RawOffsets().end(),
                           original.RawOffsets().begin()));
    EXPECT_TRUE(std::equal(owned->graph.RawNeighbors().begin(),
                           owned->graph.RawNeighbors().end(),
                           original.RawNeighbors().begin()));

    const auto mapped = MapCsrFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_TRUE(mapped->graph == original);
    EXPECT_FALSE(mapped->graph.OwnsStorage());
    EXPECT_EQ(mapped->graph.MemoryBytes(), 0u);  // Bytes live in the map.
    EXPECT_TRUE(std::equal(mapped->labels.begin(), mapped->labels.end(),
                           labels.begin(), labels.end()));
    EXPECT_TRUE(std::equal(mapped->graph.RawNeighbors().begin(),
                           mapped->graph.RawNeighbors().end(),
                           original.RawNeighbors().begin()));
  }
}

TEST(CsrIoTest, EmptyLabelsWriteIdentity) {
  const Graph graph = MakeCycle(5);
  const std::string path = TempPath("csr_identity.ksymcsr");
  ASSERT_TRUE(WriteCsrFile(graph, {}, path).ok());
  const auto loaded = ReadCsrFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->labels, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(CsrIoTest, WriteRejectsWrongLabelCount) {
  const Graph graph = MakeCycle(5);
  const std::vector<uint64_t> labels = {1, 2, 3};  // 5 vertices.
  const auto status = WriteCsrFile(graph, labels, TempPath("csr_bad.ksymcsr"));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CsrIoTest, EmptyAndEdgelessGraphsRoundTrip) {
  for (const size_t n : {size_t{0}, size_t{7}}) {
    const Graph original(n);
    const std::string path =
        TempPath("csr_edgeless_" + std::to_string(n) + ".ksymcsr");
    ASSERT_TRUE(WriteCsrFile(original, {}, path).ok());
    const auto owned = ReadCsrFile(path);
    ASSERT_TRUE(owned.ok()) << owned.status();
    EXPECT_TRUE(owned->graph == original);
    const auto mapped = MapCsrFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_TRUE(mapped->graph == original);
  }
}

TEST(CsrIoTest, OddDegreeSumExercisesPadding) {
  // A path P2 has 2 neighbor entries; P4 has 6 — both even (2|E| always
  // is), so padding only triggers via the total byte count: 6 entries * 4
  // bytes = 24, already 8-aligned. Cover the misaligned case explicitly:
  // 2|E| = 2 (mod 4 bytes * 2 = 8 only when entries % 2 == 0)... a single
  // edge gives 2 entries = 8 bytes (aligned); 3 edges in a path give 6
  // entries = 24 bytes (aligned). Entry counts are always even, so the
  // pad branch is only reachable for files claiming odd counts — which
  // the loader rejects. Assert exactly that.
  std::vector<EdgeIndex> offsets = {0, 1, 2, 3};
  std::vector<VertexId> neighbors = {1, 0, 1};  // 3 entries: odd.
  std::vector<uint64_t> labels = {0, 1, 2};
  ExpectBothLoadersReject(AssembleRawCsr(offsets, neighbors, labels),
                          "odd neighbor count", "odd_entries");
}

TEST(CsrIoTest, AnonymizationByteIdenticalAcrossLoadPaths) {
  Rng rng(5);
  const Graph original = ErdosRenyiGnm(60, 150, rng);
  const std::string path = TempPath("csr_anon.ksymcsr");
  ASSERT_TRUE(WriteCsrFile(original, {}, path).ok());
  const auto mapped = MapCsrFile(path);
  ASSERT_TRUE(mapped.ok());

  AnonymizationOptions options;
  options.k = 3;
  const auto from_memory = Anonymize(original, options);
  const auto from_mmap = Anonymize(mapped->graph, options);
  ASSERT_TRUE(from_memory.ok());
  ASSERT_TRUE(from_mmap.ok());
  EXPECT_TRUE(from_memory->graph == from_mmap->graph);

  // Byte-identical, not merely graph-equal: serialize both releases.
  std::ostringstream mem_out;
  std::ostringstream map_out;
  ASSERT_TRUE(WriteEdgeList(from_memory->graph, mem_out).ok());
  ASSERT_TRUE(WriteEdgeList(from_mmap->graph, map_out).ok());
  EXPECT_EQ(mem_out.str(), map_out.str());
}

TEST(CsrIoTest, BorrowedGraphCopyIsOwningDeepCopy) {
  const WrittenGraph written = MakeWrittenGraph();
  const std::string path = TempPath("csr_borrow.ksymcsr");
  WriteFileBytes(path, written.bytes);
  auto mapped = MapCsrFile(path);
  ASSERT_TRUE(mapped.ok());

  // Copying a borrowed graph materializes an owning deep copy: the copy's
  // arrays are its own, not aliases of the mapping.
  Graph copy = mapped->graph;
  EXPECT_TRUE(copy.OwnsStorage());
  EXPECT_GT(copy.MemoryBytes(), 0u);
  EXPECT_TRUE(copy == written.graph);
  EXPECT_NE(copy.RawNeighbors().data(), mapped->graph.RawNeighbors().data());
  EXPECT_NE(copy.RawOffsets().data(), mapped->graph.RawOffsets().data());

  // Copy-assignment takes the same path.
  Graph assigned;
  assigned = mapped->graph;
  EXPECT_TRUE(assigned.OwnsStorage());
  EXPECT_TRUE(assigned == written.graph);

  // Moving a borrowed graph still transfers the borrowed views (zero-copy
  // loads stay zero-copy through MappedCsrGraph moves).
  MappedCsrGraph moved = std::move(*mapped);
  EXPECT_FALSE(moved.graph.OwnsStorage());
  EXPECT_TRUE(moved.graph == written.graph);

  // The deep copy survives the mapping itself going away.
  { MappedCsrGraph dropped = std::move(moved); }
  EXPECT_TRUE(copy == written.graph);
  EXPECT_EQ(copy.Degree(0), written.graph.Degree(0));
}

TEST(CsrIoTest, ReadGraphAutoDetectsByMagic) {
  const Graph graph = MakePetersen();
  const std::string text_path = TempPath("auto_graph.edges");
  const std::string csr_path = TempPath("auto_graph.ksymcsr");
  ASSERT_TRUE(WriteEdgeListFile(graph, text_path).ok());
  ASSERT_TRUE(WriteCsrFile(graph, {}, csr_path).ok());
  EXPECT_FALSE(IsCsrFile(text_path));
  EXPECT_TRUE(IsCsrFile(csr_path));

  const auto text = ReadGraphAuto(text_path);
  ASSERT_TRUE(text.ok());
  EXPECT_FALSE(text->binary);
  EXPECT_TRUE(text->graph.OwnsStorage());
  EXPECT_TRUE(text->graph == graph);

  const auto binary = ReadGraphAuto(csr_path);
  ASSERT_TRUE(binary.ok());
  EXPECT_TRUE(binary->binary);
  EXPECT_FALSE(binary->graph.OwnsStorage());
  EXPECT_TRUE(binary->graph == graph);
  EXPECT_EQ(binary->labels.size(), graph.NumVertices());
}

// ---------------------------------------------------------------------------
// Golden-file format stability. The fixture is a hand-verified write of
// the path P3 (labels 10/20/30); byte-for-byte stability pins magic,
// version, endianness, section order, checksums — everything. If this
// test breaks, the format changed: bump kCsrFormatVersion and regenerate
// the fixture deliberately (DESIGN.md §9), never silently.
// ---------------------------------------------------------------------------

Graph GoldenGraph() {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  return builder.Build();
}

TEST(CsrIoTest, GoldenFileByteStableWrite) {
  const std::string fixture =
      ReadFileBytes(std::string(KSYM_TESTDATA_DIR) + "/golden.ksymcsr");
  ASSERT_FALSE(fixture.empty());
  std::ostringstream out;
  const std::vector<uint64_t> labels = {10, 20, 30};
  ASSERT_TRUE(WriteCsr(GoldenGraph(), labels, out).ok());
  EXPECT_EQ(out.str(), fixture);
}

TEST(CsrIoTest, GoldenFileLoads) {
  const std::string path = std::string(KSYM_TESTDATA_DIR) + "/golden.ksymcsr";
  const auto loaded = ReadCsrFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->graph == GoldenGraph());
  EXPECT_EQ(loaded->labels, (std::vector<uint64_t>{10, 20, 30}));
  const auto mapped = MapCsrFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->graph == GoldenGraph());
}

TEST(CsrIoTest, GoldenFileHeaderFields) {
  const std::string fixture =
      ReadFileBytes(std::string(KSYM_TESTDATA_DIR) + "/golden.ksymcsr");
  ASSERT_GE(fixture.size(), kHeaderBytes);
  EXPECT_EQ(std::memcmp(fixture.data(), kCsrMagic, sizeof(kCsrMagic)), 0);
  uint32_t version = 0;
  uint32_t endian = 0;
  uint64_t num_vertices = 0;
  uint64_t num_neighbors = 0;
  std::memcpy(&version, fixture.data() + kVersionOffset, sizeof(version));
  std::memcpy(&endian, fixture.data() + kEndianOffset, sizeof(endian));
  std::memcpy(&num_vertices, fixture.data() + kNumVerticesOffset,
              sizeof(num_vertices));
  std::memcpy(&num_neighbors, fixture.data() + kNumNeighborsOffset,
              sizeof(num_neighbors));
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(endian, 0x01020304u);
  EXPECT_EQ(num_vertices, 3u);
  EXPECT_EQ(num_neighbors, 4u);
  // Header + 4 offsets * 8 + 4 neighbors * 4 + 3 labels * 8 = 136.
  EXPECT_EQ(fixture.size(), 136u);
}

TEST(CsrIoTest, ChecksumIsStable) {
  // Pins the checksum function itself: these values are part of the
  // on-disk format (DESIGN.md §9) and must never drift.
  EXPECT_EQ(CsrChecksum("", 0), 0x323def0871273387ull);
  EXPECT_EQ(CsrChecksum("ksym", 4), 0xffc69cd3dfd65f91ull);
  const unsigned char bytes[12] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_EQ(CsrChecksum(bytes, sizeof(bytes)), 0x190cd138237a129dull);
}

// ---------------------------------------------------------------------------
// Negative paths: every corruption is rejected with a descriptive error
// from both load paths.
// ---------------------------------------------------------------------------

TEST(CsrIoTest, RejectsEmptyAndTruncatedHeader) {
  ExpectBothLoadersReject("", "truncated .ksymcsr header", "empty");
  const WrittenGraph written = MakeWrittenGraph();
  ExpectBothLoadersReject(written.bytes.substr(0, 10),
                          "truncated .ksymcsr header", "short_header");
}

TEST(CsrIoTest, RejectsTruncatedBody) {
  const WrittenGraph written = MakeWrittenGraph();
  ExpectBothLoadersReject(
      written.bytes.substr(0, written.bytes.size() - 8),
      "file size mismatch", "truncated_body");
}

TEST(CsrIoTest, RejectsTrailingGarbage) {
  const WrittenGraph written = MakeWrittenGraph();
  ExpectBothLoadersReject(written.bytes + "x", "file size mismatch",
                          "trailing");
}

TEST(CsrIoTest, RejectsBadMagic) {
  WrittenGraph written = MakeWrittenGraph();
  written.bytes[0] = 'X';
  ExpectBothLoadersReject(written.bytes, "bad magic", "magic");
}

TEST(CsrIoTest, RejectsWrongVersion) {
  WrittenGraph written = MakeWrittenGraph();
  PatchBytes(&written.bytes, kVersionOffset, uint32_t{2});
  FixHeaderChecksum(&written.bytes);
  ExpectBothLoadersReject(written.bytes, "unsupported .ksymcsr version 2",
                          "version");
}

TEST(CsrIoTest, RejectsForeignEndianness) {
  WrittenGraph written = MakeWrittenGraph();
  PatchBytes(&written.bytes, kEndianOffset, uint32_t{0x04030201});
  FixHeaderChecksum(&written.bytes);
  ExpectBothLoadersReject(written.bytes, "endianness mismatch", "endian");
}

TEST(CsrIoTest, RejectsCorruptHeaderChecksum) {
  WrittenGraph written = MakeWrittenGraph();
  // Corrupt a count *without* fixing the checksum.
  PatchBytes(&written.bytes, kNumVerticesOffset, uint64_t{12345});
  ExpectBothLoadersReject(written.bytes, "header checksum mismatch",
                          "header_checksum");
}

TEST(CsrIoTest, RejectsOversizedCounts) {
  WrittenGraph written = MakeWrittenGraph();
  PatchBytes(&written.bytes, kNumVerticesOffset, uint64_t{1} << 40);
  FixHeaderChecksum(&written.bytes);
  ExpectBothLoadersReject(written.bytes, "oversized vertex count",
                          "oversized_n");

  WrittenGraph written2 = MakeWrittenGraph();
  PatchBytes(&written2.bytes, kNumNeighborsOffset, uint64_t{1} << 62);
  FixHeaderChecksum(&written2.bytes);
  ExpectBothLoadersReject(written2.bytes, "oversized neighbor count",
                          "oversized_m");

  // In-range but wrong counts: caught by the exact-size equality.
  WrittenGraph written3 = MakeWrittenGraph();
  PatchBytes(&written3.bytes, kNumVerticesOffset,
             uint64_t{written3.graph.NumVertices() + 1});
  FixHeaderChecksum(&written3.bytes);
  ExpectBothLoadersReject(written3.bytes, "file size mismatch", "wrong_n");
}

TEST(CsrIoTest, RejectsCorruptSections) {
  const WrittenGraph written = MakeWrittenGraph();
  const size_t offsets_bytes =
      (written.graph.NumVertices() + 1) * sizeof(EdgeIndex);

  WrittenGraph offsets_corrupt = written;
  offsets_corrupt.bytes[kHeaderBytes + 3] ^= 0x40;
  ExpectBothLoadersReject(offsets_corrupt.bytes,
                          "offsets section checksum mismatch",
                          "offsets_checksum");

  WrittenGraph neighbors_corrupt = written;
  neighbors_corrupt.bytes[kHeaderBytes + offsets_bytes + 1] ^= 0x01;
  ExpectBothLoadersReject(neighbors_corrupt.bytes,
                          "neighbors section checksum mismatch",
                          "neighbors_checksum");

  WrittenGraph labels_corrupt = written;
  labels_corrupt.bytes[labels_corrupt.bytes.size() - 1] ^= 0x80;
  ExpectBothLoadersReject(labels_corrupt.bytes,
                          "labels section checksum mismatch",
                          "labels_checksum");
}

TEST(CsrIoTest, RejectsStructurallyInvalidArrays) {
  // Honest checksums over dishonest arrays: reaches the structural
  // validator. Base valid graph: P3 (0-1, 1-2).
  const std::vector<uint64_t> labels = {0, 1, 2};

  ExpectBothLoadersReject(
      AssembleRawCsr({1, 1, 3, 4}, {1, 0, 2, 1}, labels),
      "offsets[0]", "offsets_start");
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 3, 1, 4}, {1, 0, 2, 1}, labels),
      "non-monotone offsets", "non_monotone");
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 1, 5, 4}, {1, 0, 2, 1}, labels),
      "offsets out of range", "offsets_range");
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 1, 3, 3}, {1, 0, 2, 1}, labels),
      "offsets end at", "offsets_end");
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 1, 3, 4}, {1, 0, 9, 1}, labels),
      "out of range", "neighbor_range");
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 1, 3, 4}, {1, 1, 2, 1}, labels),
      "self-loop", "self_loop");
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 2, 4, 4}, {1, 1, 0, 2}, labels),
      "unsorted or duplicate", "duplicate");
  // 0 lists 1 and 2; 1 lists 0; 2 lists 1: the 0->2 arc has no reverse.
  ExpectBothLoadersReject(
      AssembleRawCsr({0, 2, 3, 4}, {1, 2, 0, 1}, labels),
      "asymmetric adjacency", "asymmetric");
}

TEST(CsrIoTest, RandomSingleByteCorruptionNeverCrashesOrLoadsSilently) {
  // Property fuzz: flip one random byte anywhere in a valid file. The
  // loader must either reject it, or — only if the flip landed in the
  // dead padding bytes — load a graph identical to the original. Under
  // ASan/UBSan this doubles as a memory-safety fuzz of the whole ladder.
  const WrittenGraph written = MakeWrittenGraph();
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = written.bytes;
    const size_t pos = rng.NextBounded(corrupted.size());
    const unsigned char flip =
        static_cast<unsigned char>(1 + rng.NextBounded(255));
    corrupted[pos] = static_cast<char>(
        static_cast<unsigned char>(corrupted[pos]) ^ flip);
    const std::string path = TempPath("csr_fuzz.ksymcsr");
    WriteFileBytes(path, corrupted);

    const auto owned = ReadCsrFile(path);
    const auto mapped = MapCsrFile(path);
    EXPECT_EQ(owned.ok(), mapped.ok()) << "trial " << trial;
    if (owned.ok()) {
      EXPECT_TRUE(owned->graph == written.graph) << "trial " << trial;
      EXPECT_EQ(owned->labels, written.labels) << "trial " << trial;
    }
    if (mapped.ok()) {
      EXPECT_TRUE(mapped->graph == written.graph) << "trial " << trial;
    }
  }
}

TEST(CsrIoTest, MissingFileReportsPathAndErrno) {
  const std::string path = "/nonexistent/definitely/missing.ksymcsr";
  for (const auto& status :
       {ReadCsrFile(path).status(), MapCsrFile(path).status()}) {
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    EXPECT_NE(status.message().find(path), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("No such file"), std::string::npos)
        << status.message();
  }
}

}  // namespace
}  // namespace ksym
