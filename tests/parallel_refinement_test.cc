// Tests for the ExecutionContext execution policy: the thread pool and
// deterministic ParallelFor, and — the load-bearing property — that sharded
// refinement is bit-identical to the sequential path (same cells, same
// trace hash) and deterministic across repeated runs.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "aut/orbits.h"
#include "aut/refinement.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "ksym/anonymizer.h"

namespace ksym {
namespace {

// A context that shards every splitter regardless of size, so small test
// graphs exercise the parallel path (grains default high enough that they
// would otherwise stay sequential).
ExecutionContext ForcedParallelContext(uint32_t threads) {
  ExecutionContext context(threads);
  context.splitter_grain = 0;
  context.affected_grain = 0;
  return context;
}

TEST(ThreadPoolTest, RunInvokesEveryWorkerOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.Run([&hits](uint32_t worker) { ++hits[worker]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, RunIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run([&total](uint32_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(&pool, visits.size(),
              [&visits](size_t begin, size_t end, uint32_t) {
                for (size_t i = begin; i < end; ++i) ++visits[i];
              });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ChunkingIsStatic) {
  // Shard s must always receive the same contiguous chunk: the refiner's
  // merge step depends on shard-indexed outputs being ascending.
  ThreadPool pool(3);
  std::vector<uint32_t> shard_of(10, ~0u);
  ParallelFor(&pool, shard_of.size(),
              [&shard_of](size_t begin, size_t end, uint32_t shard) {
                for (size_t i = begin; i < end; ++i) shard_of[i] = shard;
              });
  // ceil(10/3) = 4: shards get [0,4), [4,8), [8,10).
  const std::vector<uint32_t> expected = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2};
  EXPECT_EQ(shard_of, expected);
}

TEST(ParallelForTest, NullPoolRunsInlineAsShardZero) {
  size_t calls = 0;
  ParallelFor(nullptr, 7, [&calls](size_t begin, size_t end, uint32_t shard) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 7u);
    EXPECT_EQ(shard, 0u);
  });
  EXPECT_EQ(calls, 1u);
  ParallelFor(nullptr, 0, [](size_t, size_t, uint32_t) { FAIL(); });
}

TEST(ExecutionContextTest, SequentialContextHasNoPool) {
  ExecutionContext context;
  EXPECT_TRUE(context.IsSequential());
  EXPECT_EQ(context.pool(), nullptr);
  ExecutionContext parallel(4);
  EXPECT_FALSE(parallel.IsSequential());
  ASSERT_NE(parallel.pool(), nullptr);
  EXPECT_EQ(parallel.pool()->num_threads(), 4u);
  EXPECT_EQ(parallel.pool(), parallel.pool());  // Built once, reused.
}

// The tentpole equivalence: parallel refinement at 2/4/8 threads produces
// the identical cell array *and* the identical trace hash as the
// sequential refiner, on random ER and BA graphs.
TEST(ParallelRefinementTest, RandomizedEquivalenceWithSequential) {
  Rng rng(1234);
  std::vector<Graph> graphs;
  for (int trial = 0; trial < 4; ++trial) {
    graphs.push_back(ErdosRenyiGnm(300 + 100 * trial, 900 + 200 * trial, rng));
    graphs.push_back(BarabasiAlbert(400 + 150 * trial, 3, rng));
  }
  for (const Graph& graph : graphs) {
    OrderedPartition sequential(graph.NumVertices(), {});
    Refiner sequential_refiner(graph);
    const uint64_t sequential_hash = sequential_refiner.RefineAll(sequential);
    const auto sequential_cells = sequential.Cells();

    for (uint32_t threads : {2u, 4u, 8u}) {
      ExecutionContext context = ForcedParallelContext(threads);
      OrderedPartition parallel(graph.NumVertices(), {});
      Refiner parallel_refiner(graph, &context);
      const uint64_t parallel_hash = parallel_refiner.RefineAll(parallel);
      EXPECT_EQ(parallel_hash, sequential_hash)
          << "trace hash diverged at " << threads << " threads on n="
          << graph.NumVertices();
      EXPECT_EQ(parallel.Cells(), sequential_cells)
          << "cells diverged at " << threads << " threads on n="
          << graph.NumVertices();
      // The sharded path must actually have been exercised.
      EXPECT_GT(context.stats().parallel_splitters, 0u);
      EXPECT_GT(context.stats().refine_calls, 0u);
    }
  }
}

TEST(ParallelRefinementTest, EquivalenceWithInitialColors) {
  Rng rng(99);
  const Graph graph = BarabasiAlbert(500, 4, rng);
  std::vector<uint32_t> colors(graph.NumVertices());
  for (size_t v = 0; v < colors.size(); ++v) {
    colors[v] = static_cast<uint32_t>(v % 3);
  }
  const auto sequential =
      EquitablePartition(graph, RefinementOptions{.colors = colors});
  ExecutionContext context = ForcedParallelContext(4);
  const auto parallel = EquitablePartition(
      graph, RefinementOptions{.colors = colors, .context = &context});
  EXPECT_EQ(parallel, sequential);
}

TEST(ParallelRefinementTest, RefineFromEquivalence) {
  // Individualize + RefineFrom, the automorphism search's inner step, must
  // also be bit-identical under the sharded refiner.
  Rng rng(7);
  const Graph graph = ErdosRenyiGnm(400, 800, rng);

  OrderedPartition sequential(graph.NumVertices(), {});
  Refiner sequential_refiner(graph);
  sequential_refiner.RefineAll(sequential);

  ExecutionContext context = ForcedParallelContext(4);
  OrderedPartition parallel(graph.NumVertices(), {});
  Refiner parallel_refiner(graph, &context);
  parallel_refiner.RefineAll(parallel);
  ASSERT_EQ(parallel.Cells(), sequential.Cells());

  const uint32_t target = sequential.TargetCell();
  if (target == OrderedPartition::kNoCell) return;  // Already discrete.
  const VertexId v = sequential.CellAt(target)[0];
  const uint64_t sequential_hash =
      sequential_refiner.RefineFrom(sequential, sequential.Individualize(v));
  const uint64_t parallel_hash =
      parallel_refiner.RefineFrom(parallel, parallel.Individualize(v));
  EXPECT_EQ(parallel_hash, sequential_hash);
  EXPECT_EQ(parallel.Cells(), sequential.Cells());
}

TEST(ParallelRefinementTest, RepeatedParallelRefineIsDeterministic) {
  Rng rng(55);
  const Graph graph = BarabasiAlbert(800, 3, rng);
  ExecutionContext context = ForcedParallelContext(8);
  Refiner refiner(graph, &context);

  OrderedPartition first(graph.NumVertices(), {});
  const uint64_t first_hash = refiner.RefineAll(first);
  for (int repeat = 0; repeat < 5; ++repeat) {
    OrderedPartition again(graph.NumVertices(), {});
    EXPECT_EQ(refiner.RefineAll(again), first_hash);
    EXPECT_EQ(again.Cells(), first.Cells());
  }
}

TEST(ParallelRefinementTest, OrbitAndAnonymizePipelinesMatchSequential) {
  Rng rng(21);
  const Graph graph = ErdosRenyiGnm(200, 380, rng);

  ExecutionContext context = ForcedParallelContext(4);
  EXPECT_TRUE(ComputeTotalDegreePartition(graph, &context) ==
              ComputeTotalDegreePartition(graph, nullptr));
  EXPECT_TRUE(ComputeAutomorphismPartition(graph, {}, &context) ==
              ComputeAutomorphismPartition(graph, {}, nullptr));

  AnonymizationOptions sequential_options;
  sequential_options.k = 3;
  sequential_options.use_total_degree_partition = true;
  AnonymizationOptions parallel_options = sequential_options;
  parallel_options.context = &context;

  const auto sequential = Anonymize(graph, sequential_options);
  const auto parallel = Anonymize(graph, parallel_options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel->graph == sequential->graph);
  EXPECT_TRUE(parallel->partition == sequential->partition);
  EXPECT_EQ(parallel->vertices_added, sequential->vertices_added);
  EXPECT_EQ(parallel->edges_added, sequential->edges_added);
}

TEST(RefinementStatsTest, AnonymizePopulatesStats) {
  Rng rng(3);
  const Graph graph = BarabasiAlbert(300, 2, rng);
  AnonymizationOptions options;
  options.k = 2;
  options.use_total_degree_partition = true;
  const auto result = Anonymize(graph, options);
  ASSERT_TRUE(result.ok());
  // The TDV path refines at least once and splits the unit partition.
  EXPECT_GT(result->refinement.refine_calls, 0u);
  EXPECT_GT(result->refinement.cells_split, 0u);
  EXPECT_GT(result->refinement.splitters_processed, 0u);
  EXPECT_GE(result->refinement.partition_seconds, 0.0);
  EXPECT_GE(result->refinement.refine_seconds, 0.0);
  EXPECT_GE(result->refinement.copy_seconds, 0.0);
  // The partition phase contains the refine phase's time.
  EXPECT_GE(result->refinement.partition_seconds,
            result->refinement.refine_seconds);
}

TEST(RefinementStatsTest, CallerContextAccumulatesAcrossCalls) {
  Rng rng(17);
  const Graph graph = BarabasiAlbert(200, 2, rng);
  ExecutionContext context;  // Sequential policy, shared stats sink.
  AnonymizationOptions options;
  options.k = 2;
  options.use_total_degree_partition = true;
  options.context = &context;

  ASSERT_TRUE(Anonymize(graph, options).ok());
  const uint64_t after_one = context.stats().refine_calls;
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE(Anonymize(graph, options).ok());
  EXPECT_EQ(context.stats().refine_calls, 2 * after_one);
  context.ResetStats();
  EXPECT_EQ(context.stats().refine_calls, 0u);
}

TEST(RefinementApiTest, SingleEntryPointSignatures) {
  // Each refinement entry point has exactly one public signature (the
  // options-struct / ExecutionContext form); a null context must be the
  // sequential policy, not a distinct code path.
  Rng rng(11);
  const Graph graph = ErdosRenyiGnm(150, 300, rng);
  ExecutionContext sequential(1);
  EXPECT_EQ(EquitablePartition(graph, RefinementOptions{}),
            EquitablePartition(graph, RefinementOptions{.context = &sequential}));
  EXPECT_TRUE(ComputeTotalDegreePartition(graph, nullptr) ==
              ComputeTotalDegreePartition(graph, &sequential));
}

}  // namespace
}  // namespace ksym
