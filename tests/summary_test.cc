// Tests for whole-graph summary statistics.

#include "stats/summary.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace ksym {
namespace {

TEST(SummaryTest, EmptyGraph) {
  Rng rng(1);
  const GraphSummary s = ComputeGraphSummary(Graph(0), rng);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.diameter, 0u);
}

TEST(SummaryTest, PathGraphExactValues) {
  Rng rng(2);
  const GraphSummary s = ComputeGraphSummary(MakePath(5), rng);
  EXPECT_EQ(s.diameter, 4u);
  // Average over ordered connected pairs of P5:
  // distances 1..4 with multiplicities 8,6,4,2 (ordered) = 40/20 = 2.
  EXPECT_DOUBLE_EQ(s.average_path_length, 2.0);
  EXPECT_DOUBLE_EQ(s.global_clustering, 0.0);
  EXPECT_DOUBLE_EQ(s.largest_component_fraction, 1.0);
}

TEST(SummaryTest, CompleteGraphValues) {
  Rng rng(3);
  const GraphSummary s = ComputeGraphSummary(MakeComplete(6), rng);
  EXPECT_EQ(s.diameter, 1u);
  EXPECT_DOUBLE_EQ(s.average_path_length, 1.0);
  EXPECT_DOUBLE_EQ(s.global_clustering, 1.0);
}

TEST(SummaryTest, CycleDiameter) {
  Rng rng(4);
  EXPECT_EQ(ComputeGraphSummary(MakeCycle(10), rng).diameter, 5u);
  EXPECT_EQ(ComputeGraphSummary(MakeCycle(11), rng).diameter, 5u);
}

TEST(SummaryTest, StarIsDisassortative) {
  Rng rng(5);
  const GraphSummary s = ComputeGraphSummary(MakeStar(20), rng);
  EXPECT_LT(s.degree_assortativity, 0.0);
}

TEST(SummaryTest, DisconnectedComponentFraction) {
  Rng rng(6);
  const Graph g = DisjointUnion(MakeComplete(6), MakePath(2));
  const GraphSummary s = ComputeGraphSummary(g, rng);
  EXPECT_DOUBLE_EQ(s.largest_component_fraction, 6.0 / 8.0);
  EXPECT_EQ(s.diameter, 1u);  // Max within components: K6 diameter 1, P2 1.
}

TEST(SummaryTest, SampledModeApproximatesExact) {
  Rng rng1(7);
  Rng rng2(7);
  const Graph g = MakeGrid(12, 12);  // 144 vertices.
  const GraphSummary exact =
      ComputeGraphSummary(g, rng1, /*exact_bfs_limit=*/1000);
  const GraphSummary sampled =
      ComputeGraphSummary(g, rng2, /*exact_bfs_limit=*/10,
                          /*sample_sources=*/64);
  EXPECT_LE(sampled.diameter, exact.diameter);
  EXPECT_GE(sampled.diameter, exact.diameter / 2);
  EXPECT_NEAR(sampled.average_path_length, exact.average_path_length,
              exact.average_path_length * 0.25);
}

TEST(SummaryTest, TriangleHeavyGraphClusters) {
  // Two triangles sharing a vertex.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(2, 4);
  Rng rng(8);
  const GraphSummary s = ComputeGraphSummary(b.Build(), rng);
  // 2 triangles, triples: degrees 2,2,4,2,2 -> 1+1+6+1+1 = 10; 6/10.
  EXPECT_DOUBLE_EQ(s.global_clustering, 0.6);
}

}  // namespace
}  // namespace ksym
