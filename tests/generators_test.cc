// Tests for graph generators: structural properties of deterministic
// families and statistical/validity properties of random models.

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.h"

namespace ksym {
namespace {

TEST(DeterministicFamiliesTest, SizesAndDegrees) {
  EXPECT_EQ(MakePath(6).NumEdges(), 5u);
  EXPECT_EQ(MakeCycle(6).NumEdges(), 6u);
  EXPECT_EQ(MakeStar(6).NumEdges(), 5u);
  EXPECT_EQ(MakeComplete(6).NumEdges(), 15u);
  EXPECT_EQ(MakeCompleteBipartite(2, 3).NumEdges(), 6u);
  EXPECT_EQ(MakeHypercube(3).NumVertices(), 8u);
  EXPECT_EQ(MakeHypercube(3).NumEdges(), 12u);
}

TEST(DeterministicFamiliesTest, PetersenIsCubic) {
  const Graph p = MakePetersen();
  EXPECT_EQ(p.NumVertices(), 10u);
  EXPECT_EQ(p.NumEdges(), 15u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(p.Degree(v), 3u);
  EXPECT_EQ(TotalTriangles(p), 0u);  // Girth 5.
}

TEST(DeterministicFamiliesTest, BalancedTreeSize) {
  // Binary depth 3: 1 + 2 + 4 + 8 = 15 vertices, 14 edges.
  const Graph t = MakeBalancedTree(2, 3);
  EXPECT_EQ(t.NumVertices(), 15u);
  EXPECT_EQ(t.NumEdges(), 14u);
  EXPECT_TRUE(IsConnected(t));
}

TEST(DeterministicFamiliesTest, GridIsConnectedAndPlanarSized) {
  const Graph g = MakeGrid(3, 4);
  EXPECT_EQ(g.NumVertices(), 12u);
  EXPECT_EQ(g.NumEdges(), 3u * 3u + 4u * 2u);  // 17.
  EXPECT_TRUE(IsConnected(g));
}

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(50, 100, rng);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumEdges(), 100u);
}

TEST(ErdosRenyiTest, GnmClampsToMaximum) {
  Rng rng(2);
  const Graph g = ErdosRenyiGnm(5, 1000, rng);
  EXPECT_EQ(g.NumEdges(), 10u);  // K_5.
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  Rng rng(3);
  const Graph g = ErdosRenyiGnp(100, 0.1, rng);
  const double expected = 0.1 * (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected, 80.0);
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  Rng rng1(5);
  Rng rng2(5);
  EXPECT_TRUE(ErdosRenyiGnm(30, 60, rng1) == ErdosRenyiGnm(30, 60, rng2));
}

TEST(BarabasiAlbertTest, SizeAndSkew) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(500, 2, rng);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_TRUE(IsConnected(g));
  const DegreeStats stats = ComputeDegreeStats(g);
  // Preferential attachment: max degree well above the average.
  EXPECT_GT(static_cast<double>(stats.max_degree),
            3.0 * stats.average_degree);
  EXPECT_GE(stats.min_degree, 2u);
}

TEST(WattsStrogatzTest, DegreeSumPreserved) {
  Rng rng(9);
  const Graph g = WattsStrogatz(100, 2, 0.1, rng);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 200u);  // n * k edges, rewiring preserves count.
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(11);
  const Graph g = WattsStrogatz(20, 2, 0.0, rng);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.Degree(v), 4u);
}

TEST(ConfigurationModelTest, ExactRegularSequence) {
  Rng rng(13);
  const std::vector<size_t> degrees(20, 3);
  const auto result = ConfigurationModel(degrees, rng);
  ASSERT_TRUE(result.ok());
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(result->Degree(v), 3u);
  }
}

TEST(ConfigurationModelTest, RejectsOddSum) {
  Rng rng(17);
  const auto result = ConfigurationModel({3, 3, 3}, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigurationModelTest, RejectsImpossibleDegree) {
  Rng rng(19);
  const auto result = ConfigurationModel({5, 1, 1, 1}, rng);
  EXPECT_FALSE(result.ok());
}

TEST(ConfigurationModelTest, SkewedSequenceCloseToTarget) {
  Rng rng(23);
  std::vector<size_t> degrees(200, 1);
  degrees[0] = 150;  // One big hub.
  degrees[1] = 30;
  degrees[2] = 21;  // Make the sum even: 150+30+21+197 = 398.
  const auto result = ConfigurationModel(degrees, rng);
  ASSERT_TRUE(result.ok());
  const uint64_t target_sum =
      std::accumulate(degrees.begin(), degrees.end(), uint64_t{0});
  // Erasure loses at most a small fraction of stubs.
  EXPECT_GE(2 * result->NumEdges(), target_sum - 20);
  EXPECT_NEAR(static_cast<double>(result->Degree(0)), 150.0, 10.0);
}

}  // namespace
}  // namespace ksym
