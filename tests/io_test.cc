// Tests for edge-list I/O: parsing, comments, remapping, round trips.

#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace ksym {
namespace {

TEST(IoTest, ParsesSimpleEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumVertices(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n% other comment\n0 1\n\n1 2\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 2u);
}

TEST(IoTest, RemapsSparseIds) {
  std::istringstream in("100 2000\n2000 31\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumVertices(), 3u);
  // Ascending original-id order: 31 -> 0, 100 -> 1, 2000 -> 2.
  EXPECT_EQ(loaded->labels, (std::vector<uint64_t>{31, 100, 2000}));
  EXPECT_TRUE(loaded->graph.HasEdge(1, 2));  // 100 -- 2000.
  EXPECT_TRUE(loaded->graph.HasEdge(2, 0));  // 2000 -- 31.
}

TEST(IoTest, DropsSelfLoopsAndDuplicates) {
  std::istringstream in("1 1\n1 2\n2 1\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
}

TEST(IoTest, DuplicateAndSelfLoopHeavyInputCollapsesToSimpleGraph) {
  // Every edge repeated in both orientations plus self-loops on each
  // vertex: the loader must still produce the simple triangle.
  std::istringstream in(
      "0 0\n0 1\n1 0\n0 1\n1 1\n1 2\n2 1\n2 2\n2 0\n0 2\n2 0\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumVertices(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
  EXPECT_TRUE(loaded->graph == MakeCycle(3));
}

TEST(IoTest, ParsesCrlfLineEndings) {
  std::istringstream in("# header\r\n0 1\r\n1 2\r\n\r\n2 0\r\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumVertices(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
  // The trailing '\r' must not leak into the parsed ids.
  EXPECT_EQ(loaded->labels, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(IoTest, CommentAndBlankVariants) {
  std::istringstream in(
      "\n   \n\t\n# comment\n   # indented comment\n% matrix-market\n0 1\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
}

TEST(IoTest, RejectsMalformedLine) {
  std::istringstream in("0 1\njunk\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IoTest, RejectsNegativeIds) {
  std::istringstream in("-1 2\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(IoTest, AcceptsExtraColumnsIgnored) {
  std::istringstream in("0 1 0.5\n1 2 0.7\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 2u);
}

TEST(IoTest, RoundTripPreservesGraph) {
  const Graph original = MakePetersen();
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeList(original, out).ok());
  std::istringstream in(out.str());
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  // Internal ids are written, so the round trip is exact.
  EXPECT_TRUE(loaded->graph == original);
}

TEST(IoTest, FileRoundTrip) {
  const Graph original = MakeCycle(7);
  const std::string path = testing::TempDir() + "/ksym_io_test.edges";
  ASSERT_TRUE(WriteEdgeListFile(original, path).ok());
  const auto loaded = ReadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->graph == original);
}

TEST(IoTest, MissingFileFails) {
  const auto loaded = ReadEdgeListFile("/nonexistent/definitely/missing");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IoTest, OpenFailureReportsPathAndErrno) {
  const std::string path = "/nonexistent/definitely/missing";
  const auto loaded = ReadEdgeListFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("No such file"), std::string::npos)
      << loaded.status().message();

  const Status write_status =
      WriteEdgeListFile(MakeCycle(3), "/nonexistent/dir/out.edges");
  ASSERT_FALSE(write_status.ok());
  EXPECT_NE(write_status.message().find("/nonexistent/dir/out.edges"),
            std::string::npos)
      << write_status.message();
  EXPECT_NE(write_status.message().find("No such file"), std::string::npos)
      << write_status.message();
}

}  // namespace
}  // namespace ksym
