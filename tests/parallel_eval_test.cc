// Tests for the deterministic parallel evaluation engine: every
// parallelized evaluation kernel — degree / clustering / triangle values,
// sampled path lengths, resilience curves, batch sampling, and the attack
// measures — must produce bit-identical output to its sequential path at
// any thread count. Mirrors parallel_refinement_test.cc; runs under the
// same TSan CI job.

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "attack/measures.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "ksym/anonymizer.h"
#include "ksym/sampling.h"
#include "stats/distributions.h"
#include "stats/resilience.h"

namespace ksym {
namespace {

constexpr uint32_t kThreadCounts[] = {2, 4, 8};

std::vector<Graph> TestGraphs() {
  Rng rng(20260806);
  std::vector<Graph> graphs;
  graphs.push_back(ErdosRenyiGnm(300, 900, rng));
  graphs.push_back(BarabasiAlbert(400, 3, rng));
  graphs.push_back(BarabasiAlbert(250, 6, rng));  // Denser: more triangles.
  // Disconnected: two components exercise the cross-component skip paths.
  graphs.push_back(DisjointUnion(ErdosRenyiGnm(120, 300, rng),
                                 BarabasiAlbert(150, 2, rng)));
  return graphs;
}

TEST(ParallelEvalTest, DegreeValuesMatchesSequential) {
  for (const Graph& graph : TestGraphs()) {
    const auto sequential = DegreeValues(graph);
    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      EXPECT_EQ(DegreeValues(graph, &context), sequential);
    }
  }
}

TEST(ParallelEvalTest, TriangleCountsMatchSequential) {
  for (const Graph& graph : TestGraphs()) {
    const auto sequential = TriangleCounts(graph);
    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      EXPECT_EQ(TriangleCounts(graph, &context), sequential);
    }
  }
}

TEST(ParallelEvalTest, ClusteringValuesMatchSequential) {
  for (const Graph& graph : TestGraphs()) {
    const auto sequential = ClusteringValues(graph);
    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      // Bit-identical, not approximately equal: same tri counts, same
      // divisions, in slots filled by index.
      EXPECT_EQ(ClusteringValues(graph, &context), sequential);
    }
  }
}

TEST(ParallelEvalTest, SampledPathLengthsMatchSequential) {
  for (const Graph& graph : TestGraphs()) {
    Rng sequential_rng(99);
    const auto sequential = SampledPathLengths(graph, 120, sequential_rng);
    EXPECT_FALSE(sequential.empty());
    // First post-call draw: both paths must leave the Rng in the same state.
    const uint64_t expected_next = sequential_rng.Next();
    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      Rng parallel_rng(99);
      EXPECT_EQ(SampledPathLengths(graph, 120, parallel_rng, &context),
                sequential)
          << "path lengths diverged at " << threads << " threads";
      EXPECT_EQ(parallel_rng.Next(), expected_next);
    }
  }
}

TEST(ParallelEvalTest, SampledPathLengthsSkipsDisconnectedPairs) {
  Rng rng(139);
  const Graph g = DisjointUnion(MakeComplete(3), MakeComplete(3));
  ExecutionContext context(4);
  const auto lengths = SampledPathLengths(g, 100, rng, &context);
  EXPECT_FALSE(lengths.empty());
  for (double l : lengths) EXPECT_DOUBLE_EQ(l, 1.0);  // Within a K_3.
}

TEST(ParallelEvalTest, ResilienceCurveMatchesSequential) {
  for (const Graph& graph : TestGraphs()) {
    const auto sequential = ResilienceCurve(graph, 21, 0.6);
    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      EXPECT_EQ(ResilienceCurve(graph, 21, 0.6, &context), sequential);
    }
  }
}

// One release shared by the batch-sampling tests.
AnonymizationResult TestRelease() {
  Rng rng(7);
  const Graph graph = BarabasiAlbert(200, 2, rng);
  AnonymizationOptions options;
  options.k = 3;
  options.use_total_degree_partition = true;
  auto result = Anonymize(graph, options);
  KSYM_CHECK(result.ok());
  return std::move(result).value();
}

TEST(ParallelEvalTest, DrawSamplesMatchesSequentialBatch) {
  const AnonymizationResult release = TestRelease();
  for (const bool exact : {false, true}) {
    const Rng rng(4242);
    BatchSampleOptions options;
    options.num_samples = 6;
    options.target_vertices = release.original_vertices;
    options.exact = exact;
    std::vector<SampleStats> sequential_stats;
    const auto sequential = DrawSamples(release.graph, release.partition,
                                        options, rng, &sequential_stats);
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ(sequential->size(), options.num_samples);
    ASSERT_EQ(sequential_stats.size(), options.num_samples);

    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      BatchSampleOptions parallel_options = options;
      parallel_options.context = &context;
      std::vector<SampleStats> parallel_stats;
      const auto parallel = DrawSamples(release.graph, release.partition,
                                        parallel_options, rng,
                                        &parallel_stats);
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(parallel->size(), options.num_samples);
      for (size_t i = 0; i < options.num_samples; ++i) {
        EXPECT_TRUE((*parallel)[i] == (*sequential)[i])
            << "sample " << i << " diverged at " << threads << " threads"
            << (exact ? " (exact)" : " (approximate)");
        EXPECT_EQ(parallel_stats[i].sampled_vertices,
                  sequential_stats[i].sampled_vertices);
        EXPECT_EQ(parallel_stats[i].copy_operations,
                  sequential_stats[i].copy_operations);
      }
    }
  }
}

TEST(ParallelEvalTest, DrawSamplesMatchesSingleSampleFork) {
  // The batch is defined as sample i <- Fork(i) of the caller's stream: the
  // batch API must equal hand-forked single-sample calls.
  const AnonymizationResult release = TestRelease();
  const Rng rng(11);
  BatchSampleOptions options;
  options.num_samples = 4;
  options.target_vertices = release.original_vertices;
  const auto batch =
      DrawSamples(release.graph, release.partition, options, rng);
  ASSERT_TRUE(batch.ok());
  const std::vector<double> weights =
      SizeAwareCellWeights(release.graph, release.partition);
  for (size_t i = 0; i < options.num_samples; ++i) {
    Rng sample_rng = rng.Fork(i);
    const auto single =
        ApproximateBackboneSample(release.graph, release.partition,
                                  release.original_vertices, sample_rng,
                                  &weights);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE((*batch)[i] == *single) << "sample " << i;
  }
}

TEST(ParallelEvalTest, DrawSamplesDoesNotAdvanceCallerRng) {
  const AnonymizationResult release = TestRelease();
  Rng rng(57);
  Rng untouched(57);
  BatchSampleOptions options;
  options.num_samples = 3;
  options.target_vertices = release.original_vertices;
  ASSERT_TRUE(DrawSamples(release.graph, release.partition, options, rng).ok());
  EXPECT_EQ(rng.Next(), untouched.Next());
}

TEST(ParallelEvalTest, DrawSamplesRejectsMismatchedPartition) {
  const AnonymizationResult release = TestRelease();
  VertexPartition bad = release.partition;
  bad.cell_of.pop_back();
  BatchSampleOptions options;
  options.num_samples = 2;
  options.target_vertices = release.original_vertices;
  const Rng rng(3);
  EXPECT_FALSE(DrawSamples(release.graph, bad, options, rng).ok());
}

TEST(ParallelEvalTest, AttackMeasuresMatchSequential) {
  for (const Graph& graph : TestGraphs()) {
    for (uint32_t threads : kThreadCounts) {
      ExecutionContext context(threads);
      const StructuralMeasure sequential_measures[] = {
          DegreeMeasure(), TriangleMeasure(), NeighborDegreeSequenceMeasure(),
          CombinedMeasure(), NeighborhoodMeasure()};
      const StructuralMeasure parallel_measures[] = {
          DegreeMeasure(&context), TriangleMeasure(&context),
          NeighborDegreeSequenceMeasure(&context), CombinedMeasure(&context),
          NeighborhoodMeasure(&context)};
      for (size_t m = 0; m < std::size(sequential_measures); ++m) {
        EXPECT_EQ(parallel_measures[m].eval(graph),
                  sequential_measures[m].eval(graph))
            << parallel_measures[m].name << " diverged at " << threads
            << " threads";
      }
    }
  }
}

TEST(ParallelEvalTest, NeighborhoodMeasureCoversHubEgoNets) {
  // A star center has an ego net over the 64-vertex exact-canonical limit,
  // so the refinement-trace fallback runs inside the sharded loop too.
  Rng rng(5);
  const Graph graph = DisjointUnion(MakeStar(100), BarabasiAlbert(100, 2, rng));
  const StructuralMeasure sequential = NeighborhoodMeasure();
  for (uint32_t threads : kThreadCounts) {
    ExecutionContext context(threads);
    EXPECT_EQ(NeighborhoodMeasure(&context).eval(graph),
              sequential.eval(graph));
  }
}

TEST(ParallelEvalTest, RepeatedParallelEvalIsDeterministic) {
  Rng rng(617);
  const Graph graph = BarabasiAlbert(300, 3, rng);
  ExecutionContext context(8);
  const auto first_cc = ClusteringValues(graph, &context);
  const auto first_curve = ResilienceCurve(graph, 11, 0.5, &context);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(ClusteringValues(graph, &context), first_cc);
    EXPECT_EQ(ResilienceCurve(graph, 11, 0.5, &context), first_curve);
  }
}

}  // namespace
}  // namespace ksym
