// End-to-end integration tests: the full publisher -> adversary -> analyst
// pipeline across modules, exercised exactly the way the examples and
// benches compose the library.

#include <gtest/gtest.h>

#include <sstream>

#include "attack/measures.h"
#include "attack/reidentification.h"
#include "aut/isomorphism.h"
#include "baseline/naive.h"
#include "datasets/datasets.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "ksym/anonymizer.h"
#include "ksym/backbone.h"
#include "ksym/sampling.h"
#include "ksym/verifier.h"
#include "stats/aggregate.h"
#include "stats/distributions.h"
#include "stats/ks.h"

namespace ksym {
namespace {

TEST(IntegrationTest, PublishVerifySampleOnEnron) {
  const Graph original = MakeEnronLike();
  AnonymizationOptions options;
  options.k = 5;
  const auto release = Anonymize(original, options);
  ASSERT_TRUE(release.ok());

  // The release withstands every concrete measure at level k.
  for (const auto& measure :
       {DegreeMeasure(), TriangleMeasure(), CombinedMeasure()}) {
    const VertexPartition p = PartitionByMeasure(release->graph, measure);
    for (const auto& cell : p.cells) EXPECT_GE(cell.size(), 5u);
  }
  // Independent ground-truth verification.
  EXPECT_TRUE(IsKSymmetric(release->graph, 5));
  EXPECT_TRUE(IsSupergraphOf(release->graph, original));

  // Analyst recovers statistics within tolerance.
  Rng rng(99);
  double ks = 0;
  constexpr int kSamples = 8;
  for (int i = 0; i < kSamples; ++i) {
    const auto sample = ApproximateBackboneSample(
        release->graph, release->partition, release->original_vertices, rng);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(sample->NumVertices(), original.NumVertices());
    ks += KolmogorovSmirnovStatistic(DegreeValues(original),
                                     DegreeValues(*sample));
  }
  EXPECT_LE(ks / kSamples, 0.15);
}

TEST(IntegrationTest, NaiveReleaseIsAttackableKSymmetricIsNot) {
  const Graph original = MakeEnronLike();
  Rng rng(7);
  const NaiveAnonymization naive = NaiveAnonymize(original, rng);
  const VertexPartition naive_cells =
      PartitionByMeasure(naive.graph, CombinedMeasure());
  // A large fraction of the naive release is uniquely re-identifiable.
  EXPECT_GT(naive_cells.NumSingletons(), original.NumVertices() / 2);

  AnonymizationOptions options;
  options.k = 3;
  const auto release = Anonymize(original, options);
  ASSERT_TRUE(release.ok());
  const VertexPartition protected_cells =
      PartitionByMeasure(release->graph, CombinedMeasure());
  EXPECT_EQ(protected_cells.NumSingletons(), 0u);
}

TEST(IntegrationTest, ReleaseRoundTripsThroughEdgeListIo) {
  // Publisher writes G' to disk; analyst reads it back and samples.
  const Graph original = MakeEnronLike();
  AnonymizationOptions options;
  options.k = 4;
  const auto release = Anonymize(original, options);
  ASSERT_TRUE(release.ok());

  std::ostringstream buffer;
  ASSERT_TRUE(WriteEdgeList(release->graph, buffer).ok());
  std::istringstream in(buffer.str());
  const auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->graph == release->graph);

  // The partition can be recomputed from the loaded graph alone (it need
  // not be transmitted when exactness is affordable).
  const VertexPartition orbits = ComputeAutomorphismPartition(loaded->graph, {}, nullptr);
  for (const auto& orbit : orbits.cells) EXPECT_GE(orbit.size(), 4u);
}

TEST(IntegrationTest, HubExclusionEndToEnd) {
  const Graph original = MakeNetTraceLike();
  const VertexPartition orbits = ComputeTotalDegreePartition(original, nullptr);

  AnonymizationOptions with_hubs;
  with_hubs.k = 5;
  const auto full = AnonymizeWithPartition(original, orbits, with_hubs);
  ASSERT_TRUE(full.ok());

  AnonymizationOptions no_hubs;
  no_hubs.k = 5;
  no_hubs.requirement = HubExclusionRequirement(
      5, DegreeThresholdForExcludedFraction(original, 0.01));
  const auto excluded = AnonymizeWithPartition(original, orbits, no_hubs);
  ASSERT_TRUE(excluded.ok());

  // The paper's Figure 10 claim: dramatic cost reduction.
  EXPECT_LT(excluded->edges_added, full->edges_added / 2);
  EXPECT_GT(excluded->orbits_excluded, 0u);

  // Non-hub vertices remain protected: every cell whose members fall under
  // the degree threshold has >= k members.
  const size_t threshold = DegreeThresholdForExcludedFraction(original, 0.01);
  for (const auto& cell : excluded->partition.cells) {
    // Degree in the *original* graph decides protection.
    const VertexId representative = cell.front();
    if (representative < original.NumVertices() &&
        original.Degree(representative) <= threshold) {
      EXPECT_GE(cell.size(), 5u);
    }
  }
}

TEST(IntegrationTest, BackboneOfReleaseMatchesOriginalBackbone) {
  // Theorem 4 at dataset scale (Enron).
  const Graph original = MakeEnronLike();
  const VertexPartition orbits = ComputeAutomorphismPartition(original, {}, nullptr);
  const BackboneResult original_backbone = ComputeBackbone(original, orbits, nullptr);

  AnonymizationOptions options;
  options.k = 3;
  const auto release = AnonymizeWithPartition(original, orbits, options);
  ASSERT_TRUE(release.ok());
  const BackboneResult release_backbone =
      ComputeBackbone(release->graph, release->partition, nullptr);
  EXPECT_TRUE(
      AreIsomorphic(original_backbone.graph, release_backbone.graph));
}

TEST(IntegrationTest, ExactSamplerReproducesOriginalWhenBudgetMatches) {
  // With the released graph being G (k=1, no copies), the exact sampler
  // must regrow the backbone to exactly |V(G)| vertices and produce a graph
  // isomorphic to G's backbone regrowth — sanity of the machinery.
  const Graph original = MakeEnronLike();
  const VertexPartition orbits = ComputeAutomorphismPartition(original, {}, nullptr);
  Rng rng(3);
  SampleStats stats;
  const auto sample = ExactBackboneSample(original, orbits,
                                          original.NumVertices(), rng,
                                          nullptr, &stats);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(stats.requested_vertices, original.NumVertices());
  EXPECT_NEAR(static_cast<double>(sample->NumVertices()),
              static_cast<double>(original.NumVertices()), 4.0);
}

TEST(IntegrationTest, UtilityComparisonPipeline) {
  const Graph original = MakeEnronLike();
  AnonymizationOptions options;
  options.k = 5;
  const auto release = Anonymize(original, options);
  ASSERT_TRUE(release.ok());
  Rng rng(11);
  std::vector<Graph> samples;
  for (int i = 0; i < 6; ++i) {
    auto sample = ApproximateBackboneSample(
        release->graph, release->partition, release->original_vertices, rng);
    ASSERT_TRUE(sample.ok());
    samples.push_back(std::move(sample).value());
  }
  const auto pooled = PooledKsConvergence(original, samples,
                                      [](const Graph& g) { return DegreeValues(g); });
  ASSERT_EQ(pooled.size(), samples.size());
  EXPECT_LE(pooled.back(), 0.2);
  const UtilityDistance d = CompareUtility(original, samples[0], 300, rng);
  EXPECT_LE(d.ks_degree, 0.3);
  EXPECT_LE(d.ks_clustering, 0.3);
}

TEST(IntegrationTest, FSymmetryCustomPolicyEndToEnd) {
  // A publisher wanting stronger protection for low-degree (vulnerable)
  // individuals: k grows as degree shrinks.
  const Graph original = MakeEnronLike();
  AnonymizationOptions options;
  options.requirement = [](const std::vector<VertexId>&, size_t degree) {
    if (degree <= 2) return 6u;
    if (degree <= 8) return 3u;
    return 2u;
  };
  const auto release = Anonymize(original, options);
  ASSERT_TRUE(release.ok());
  for (const auto& cell : release->partition.cells) {
    const size_t degree = release->graph.Degree(cell.front());
    const uint32_t required = degree <= 2 ? 6u : degree <= 8 ? 3u : 2u;
    EXPECT_GE(cell.size(), required);
  }
}

}  // namespace
}  // namespace ksym
