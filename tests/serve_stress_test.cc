// Concurrent-client stress harness for the ksym_serve daemon core, with
// fault injection: many client threads hammer one in-process Server with a
// mix of valid work, garbage frames, truncated lines, and abrupt
// disconnects (before and after writing). The server must never crash,
// hang, or wedge — after the storm it still answers, and its counters
// reconcile: every accepted job was answered exactly once.
//
// Deterministic per-thread xorshift streams drive the fault mix, so a
// failure replays. The whole file is TSan-clean by construction (CI runs it
// under ThreadSanitizer).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "graph/generators.h"
#include "graph/io.h"
#include "serve/api.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "serve_test_util.h"

namespace ksym {
namespace serve {
namespace {

using serve_test::TempPath;
using serve_test::TestClient;

constexpr int kThreads = 8;
constexpr int kIterations = 30;

struct Tally {
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t error = 0;
  uint64_t dropped = 0;  // Connection died before a response line arrived.
};

uint64_t Next(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::string WriteStressCsr() {
  const std::string path = TempPath("stress.ksymcsr");
  const Graph graph = MakePetersen();
  std::vector<uint64_t> labels(graph.NumVertices());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i;
  const Status status = WriteCsrFile(graph, labels, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

/// One client thread's storm: each iteration opens a fresh connection and
/// rolls one of six behaviors.
void ClientStorm(const std::string& socket_path, const std::string& input,
                 uint64_t seed, Tally& tally) {
  uint64_t state = seed;
  const std::string audit_line =
      "{\"op\":\"audit\",\"input\":\"" + input + "\",\"k\":3}";
  for (int iter = 0; iter < kIterations; ++iter) {
    TestClient client(socket_path);
    if (!client.connected()) {
      // Accept backlog pressure; counts as dropped work, not a failure.
      ++tally.dropped;
      continue;
    }
    switch (Next(state) % 6) {
      case 0: {  // Valid audit.
        const std::string line = client.RoundTrip(audit_line);
        const auto parsed = ParseWireLine(line);
        if (!parsed.ok()) {
          ++tally.dropped;
        } else if (parsed->GetString("status") == "ok") {
          ++tally.ok;
        } else if (parsed->GetString("status") == "busy") {
          ++tally.busy;
        } else {
          ++tally.error;
        }
        break;
      }
      case 1: {  // Stats (always answered inline).
        const auto parsed = ParseWireLine(client.RoundTrip("{\"op\":\"stats\"}"));
        if (parsed.ok() && parsed->GetString("status") == "ok") {
          ++tally.ok;
        } else {
          ++tally.dropped;
        }
        break;
      }
      case 2: {  // Garbage frame: must answer an error, not die.
        std::string junk;
        const size_t len = Next(state) % 48;
        for (size_t i = 0; i < len; ++i) {
          char c = static_cast<char>(Next(state) % 256);
          if (c == '\n') c = '?';
          junk.push_back(c);
        }
        const auto parsed = ParseWireLine(client.RoundTrip(junk + "!"));
        if (parsed.ok()) {
          ++tally.error;  // Overwhelmingly "error"; "ok" can't parse junk.
        } else {
          ++tally.dropped;
        }
        break;
      }
      case 3:  // Truncated frame: bytes, no newline, then disconnect.
        client.SendRaw("{\"op\":\"audit\",\"inp");
        client.Close();
        ++tally.dropped;
        break;
      case 4:  // Write a full request, vanish without reading the response.
        client.SendRaw(audit_line + "\n");
        client.Close();
        ++tally.dropped;
        break;
      default:  // Connect and immediately hang up.
        client.Close();
        ++tally.dropped;
        break;
    }
  }
}

TEST(ServeStressTest, ConcurrentClientsWithFaultInjectionStayHealthy) {
  const std::string input = WriteStressCsr();

  ServerOptions options;
  options.socket_path = TempPath("stress.sock");
  options.thread_budget = 2;
  options.max_queue = 4;  // Small enough that busy rejections really happen.
  options.retry_after_ms = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<Tally> tallies(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back(ClientStorm, options.socket_path, input,
                         uint64_t{0xabcdef12345678ull} + t, std::ref(tallies[t]));
  }
  for (std::thread& thread : clients) thread.join();

  Tally total;
  for (const Tally& tally : tallies) {
    total.ok += tally.ok;
    total.busy += tally.busy;
    total.error += tally.error;
    total.dropped += tally.dropped;
  }
  EXPECT_EQ(total.ok + total.busy + total.error + total.dropped,
            uint64_t{kThreads} * kIterations);
  EXPECT_GT(total.ok, 0u);  // Some real work got through the storm.

  // The server is still alive and coherent: a fresh connection gets a
  // correct answer byte-identical to the direct API call.
  AuditRequest request;
  request.input = input;
  request.k = 3;
  const auto direct = RunAudit(request, nullptr);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  TestClient survivor(options.socket_path);
  ASSERT_TRUE(survivor.connected());
  const auto response = ParseWireLine(survivor.RoundTrip(
      "{\"op\":\"audit\",\"input\":\"" + input + "\",\"k\":3}"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status"), "ok");
  EXPECT_EQ(response->GetString("report"), direct->report);

  // The dynamic ops also still work post-storm, and the stats report
  // carries the uniform cache counters (greppable ^graph_cache_ /
  // ^plan_cache_ prefixes, same keys as the ksym_dynamic stderr log).
  TestClient dynamic_client(options.socket_path);
  ASSERT_TRUE(dynamic_client.connected());
  auto mutated = ParseWireLine(dynamic_client.RoundTrip(
      "{\"op\":\"mutate\",\"session\":\"storm\",\"input\":\"" + input +
      "\",\"edits\":\"add 0 2\"}"));
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();
  EXPECT_EQ(mutated->GetString("status"), "ok");
  auto committed = ParseWireLine(dynamic_client.RoundTrip(
      "{\"op\":\"commit\",\"session\":\"storm\"}"));
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->GetString("status"), "ok");
  auto reanonymized = ParseWireLine(dynamic_client.RoundTrip(
      "{\"op\":\"reanonymize\",\"session\":\"storm\",\"k\":2}"));
  ASSERT_TRUE(reanonymized.ok());
  EXPECT_EQ(reanonymized->GetString("status"), "ok");
  auto stats_line = ParseWireLine(dynamic_client.RoundTrip("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats_line.ok());
  const std::string stats_report = stats_line->GetString("report");
  for (const char* key :
       {"graph_cache_hits: ", "graph_cache_entries: ", "plan_cache_hits: ",
        "plan_cache_misses: ", "plan_cache_entries: 2",
        "dynamic_sessions: 1", "phase_reanonymize_seconds: "}) {
    EXPECT_NE(stats_report.find(key), std::string::npos) << key;
  }

  // Counter reconciliation after Stop() has drained the queue and joined
  // the workers (fire-and-forget jobs may still be in flight until then):
  // every admitted job was answered exactly once, nothing leaked in the
  // queue, and the thread budget was fully returned.
  server.Stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running_threads, 0u);
  // The survivor audit above definitely completed.
  EXPECT_GE(stats.completed, 1u);
}

}  // namespace
}  // namespace serve
}  // namespace ksym
