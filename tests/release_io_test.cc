// Tests for release-triple serialization.

#include "ksym/release_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "ksym/anonymizer.h"

namespace ksym {
namespace {

ReleaseTriple MakeTestRelease(uint32_t k) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  AnonymizationOptions options;
  options.k = k;
  auto result = Anonymize(b.Build(), options);
  KSYM_CHECK(result.ok());
  return MakeReleaseTriple(*result);
}

TEST(ReleaseIoTest, RoundTrip) {
  const ReleaseTriple release = MakeTestRelease(3);
  std::ostringstream out;
  ASSERT_TRUE(WriteRelease(release, out).ok());
  std::istringstream in(out.str());
  const auto loaded = ReadRelease(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->graph == release.graph);
  EXPECT_TRUE(loaded->partition == release.partition);
  EXPECT_EQ(loaded->original_vertices, release.original_vertices);
}

TEST(ReleaseIoTest, FileRoundTrip) {
  const ReleaseTriple release = MakeTestRelease(2);
  const std::string path = testing::TempDir() + "/ksym_release_test.ksym";
  ASSERT_TRUE(WriteReleaseFile(release, path).ok());
  const auto loaded = ReadReleaseFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->graph == release.graph);
}

TEST(ReleaseIoTest, RejectsMissingHeader) {
  std::istringstream in("original 3\nvertices 3\ncell 0 1 2\n");
  EXPECT_FALSE(ReadRelease(in).ok());
}

TEST(ReleaseIoTest, RejectsIncompleteCellCover) {
  std::istringstream in(
      "# ksym-release 1\noriginal 3\nvertices 3\nedge 0 1\ncell 0 1\n");
  const auto loaded = ReadRelease(in);
  EXPECT_FALSE(loaded.ok());
}

TEST(ReleaseIoTest, RejectsDoubleCover) {
  std::istringstream in(
      "# ksym-release 1\noriginal 2\nvertices 2\ncell 0 1\ncell 1\n");
  EXPECT_FALSE(ReadRelease(in).ok());
}

TEST(ReleaseIoTest, RejectsOutOfRangeVertex) {
  std::istringstream in(
      "# ksym-release 1\noriginal 2\nvertices 2\ncell 0 1 5\n");
  EXPECT_FALSE(ReadRelease(in).ok());
}

TEST(ReleaseIoTest, RejectsOriginalLargerThanRelease) {
  std::istringstream in(
      "# ksym-release 1\noriginal 9\nvertices 2\ncell 0 1\n");
  EXPECT_FALSE(ReadRelease(in).ok());
}

TEST(ReleaseIoTest, RejectsUnknownKeyword) {
  std::istringstream in("# ksym-release 1\nfrobnicate 1\n");
  EXPECT_FALSE(ReadRelease(in).ok());
}

TEST(ReleaseIoTest, ToleratesCommentsAndBlankLines) {
  std::istringstream in(
      "# ksym-release 1\n\n# a comment\noriginal 2\nvertices 2\n"
      "edge 0 1\n\ncell 0 1\n");
  const auto loaded = ReadRelease(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
  EXPECT_EQ(loaded->partition.cells.size(), 1u);
}

}  // namespace
}  // namespace ksym
