// Tests for graph algorithms: components, BFS, triangles, clustering,
// induced subgraphs, degree statistics.

#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ksym {
namespace {

TEST(ComponentsTest, SingleComponent) {
  const Graph g = MakeCycle(5);
  const ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 1u);
  EXPECT_EQ(info.sizes[0], 5u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, MultipleComponents) {
  const Graph g = DisjointUnion(MakeCycle(3), MakePath(4));
  const ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 2u);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(LargestComponentSize(g), 4u);
}

TEST(ComponentsTest, IsolatedVerticesAreComponents) {
  const ComponentInfo info = ConnectedComponents(Graph(4));
  EXPECT_EQ(info.num_components, 4u);
}

TEST(ComponentsTest, EmptyAndSingleton) {
  EXPECT_TRUE(IsConnected(Graph(0)));
  EXPECT_TRUE(IsConnected(Graph(1)));
  EXPECT_EQ(LargestComponentSize(Graph(0)), 0u);
}

TEST(BfsTest, DistancesOnPath) {
  const Graph g = MakePath(5);
  const auto dist = BfsDistances(g, 0);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsTest, UnreachableIsMinusOne) {
  const Graph g = DisjointUnion(MakePath(2), MakePath(2));
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(BfsTest, CycleWrapsAround) {
  const auto dist = BfsDistances(MakeCycle(6), 0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
}

TEST(TriangleTest, TriangleFreeGraphs) {
  EXPECT_EQ(TotalTriangles(MakeCycle(5)), 0u);
  EXPECT_EQ(TotalTriangles(MakePath(10)), 0u);
  EXPECT_EQ(TotalTriangles(MakeCompleteBipartite(3, 3)), 0u);
  EXPECT_EQ(TotalTriangles(MakePetersen()), 0u);
}

TEST(TriangleTest, CompleteGraphCounts) {
  // K_n has C(n,3) triangles; each vertex lies on C(n-1,2).
  const Graph k5 = MakeComplete(5);
  EXPECT_EQ(TotalTriangles(k5), 10u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(TriangleCounts(k5)[v], 6u);
  }
}

TEST(TriangleTest, SingleTriangleWithTail) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  const auto tri = TriangleCounts(b.Build());
  EXPECT_EQ(tri[0], 1u);
  EXPECT_EQ(tri[1], 1u);
  EXPECT_EQ(tri[2], 1u);
  EXPECT_EQ(tri[3], 0u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  const auto cc = ClusteringCoefficients(MakeComplete(6));
  for (double c : cc) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(ClusteringTest, LowDegreeVerticesAreZero) {
  const auto cc = ClusteringCoefficients(MakePath(3));
  EXPECT_DOUBLE_EQ(cc[0], 0.0);  // Degree 1.
  EXPECT_DOUBLE_EQ(cc[1], 0.0);  // Degree 2, no triangle.
}

TEST(ClusteringTest, HalfClosedNeighborhood) {
  // Vertex 0 adjacent to 1, 2, 3; only edge (1,2) among them:
  // c(0) = 1 / C(3,2) = 1/3.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 2);
  EXPECT_NEAR(ClusteringCoefficients(b.Build())[0], 1.0 / 3.0, 1e-12);
}

TEST(InducedSubgraphTest, ExtractsTriangle) {
  const Graph k5 = MakeComplete(5);
  const Graph sub = InducedSubgraph(k5, {0, 2, 4});
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 3u);
}

TEST(InducedSubgraphTest, PreservesOnlyInternalEdges) {
  const Graph p5 = MakePath(5);  // 0-1-2-3-4
  const Graph sub = InducedSubgraph(p5, {0, 1, 3});
  EXPECT_EQ(sub.NumEdges(), 1u);  // Only 0-1 survives.
  EXPECT_TRUE(sub.HasEdge(0, 1));
}

TEST(InducedSubgraphTest, EmptySelection) {
  const Graph sub = InducedSubgraph(MakeComplete(4), {});
  EXPECT_EQ(sub.NumVertices(), 0u);
}

TEST(RelabelTest, PreservesStructure) {
  const Graph p3 = MakePath(3);                       // 0-1-2
  const Graph r = RelabelGraph(p3, {2, 0, 1});        // 0->2, 1->0, 2->1
  EXPECT_TRUE(r.HasEdge(2, 0));
  EXPECT_TRUE(r.HasEdge(0, 1));
  EXPECT_FALSE(r.HasEdge(1, 2));
}

TEST(DisjointUnionTest, ShiftsSecondGraph) {
  const Graph u = DisjointUnion(MakePath(2), MakePath(3));
  EXPECT_EQ(u.NumVertices(), 5u);
  EXPECT_EQ(u.NumEdges(), 3u);
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_TRUE(u.HasEdge(2, 3));
  EXPECT_FALSE(u.HasEdge(1, 2));
}

TEST(DegreeStatsTest, MatchesHandComputation) {
  // Star K_{1,4}: degrees 4,1,1,1,1.
  const DegreeStats stats = ComputeDegreeStats(MakeStar(5));
  EXPECT_EQ(stats.num_vertices, 5u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_EQ(stats.min_degree, 1u);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_DOUBLE_EQ(stats.median_degree, 1.0);
  EXPECT_DOUBLE_EQ(stats.average_degree, 8.0 / 5.0);
}

TEST(DegreeStatsTest, EvenCountMedianAverages) {
  const DegreeStats stats = ComputeDegreeStats(MakePath(4));  // 1,2,2,1
  EXPECT_DOUBLE_EQ(stats.median_degree, 1.5);
}

}  // namespace
}  // namespace ksym
