// Tests for orbit partitions (Orb(G)) and the total degree partition TDV(G).

#include "aut/orbits.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ksym {
namespace {

TEST(VertexPartitionTest, FromRepresentatives) {
  const VertexPartition p =
      VertexPartition::FromRepresentatives({0, 1, 0, 1, 4});
  EXPECT_EQ(p.NumCells(), 3u);
  EXPECT_EQ(p.cells[0], (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(p.cells[1], (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(p.cells[2], (std::vector<VertexId>{4}));
  EXPECT_EQ(p.cell_of[2], 0u);
  EXPECT_EQ(p.CellSizeOf(3), 2u);
  EXPECT_EQ(p.NumSingletons(), 1u);
}

TEST(VertexPartitionTest, FromCellsOrdersByMinimum) {
  const VertexPartition p =
      VertexPartition::FromCells(4, {{3, 1}, {2, 0}});
  EXPECT_EQ(p.cells[0], (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(p.cells[1], (std::vector<VertexId>{1, 3}));
}

TEST(OrbitPartitionTest, FigureOneExample) {
  // A reconstruction of the paper's Figure 1(b): orbits {1,3}, {4,5},
  // {6,8} and singletons {2} (Bob) and {7} (1-indexed as in the paper;
  // 0-indexed below). Bob has two degree-1 neighbours and degree 4; the
  // only degree >= 3 vertices are {2, 4, 5}, matching Example 1.
  GraphBuilder b(8);
  b.AddEdge(0, 1);  // "1-2": pendant on Bob.
  b.AddEdge(1, 2);  // "2-3": pendant on Bob.
  b.AddEdge(1, 3);  // "2-4".
  b.AddEdge(1, 4);  // "2-5".
  b.AddEdge(3, 4);  // "4-5".
  b.AddEdge(3, 5);  // "4-6".
  b.AddEdge(4, 7);  // "5-8".
  b.AddEdge(5, 6);  // "6-7".
  b.AddEdge(6, 7);  // "7-8".
  const Graph g = b.Build();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  // Orbits: {0,2}, {1}, {3,4}, {5,7}, {6}.
  EXPECT_EQ(orbits.NumCells(), 5u);
  EXPECT_EQ(orbits.CellSizeOf(0), 2u);
  EXPECT_EQ(orbits.cell_of[0], orbits.cell_of[2]);
  EXPECT_EQ(orbits.CellSizeOf(1), 1u);
  EXPECT_EQ(orbits.cell_of[3], orbits.cell_of[4]);
  EXPECT_EQ(orbits.cell_of[5], orbits.cell_of[7]);
  EXPECT_EQ(orbits.CellSizeOf(6), 1u);
}

TEST(OrbitPartitionTest, VertexTransitiveGraphsHaveOneOrbit) {
  for (const Graph& g : {MakeCycle(7), MakeComplete(5), MakePetersen(),
                         MakeHypercube(3)}) {
    const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
    EXPECT_EQ(orbits.NumCells(), 1u);
  }
}

TEST(OrbitPartitionTest, ColoredOrbitsRefine) {
  const Graph c4 = MakeCycle(4);
  const VertexPartition plain = ComputeAutomorphismPartition(c4, {}, nullptr);
  EXPECT_EQ(plain.NumCells(), 1u);
  const VertexPartition colored =
      ComputeAutomorphismPartition(c4, {0, 1, 0, 1}, nullptr);
  // Colour-preserving group keeps the two classes apart.
  EXPECT_EQ(colored.NumCells(), 2u);
}

TEST(TotalDegreePartitionTest, CoarserOrEqualToOrbits) {
  // Every orbit lies inside one TDV cell.
  Rng rng(47);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = ErdosRenyiGnm(40, 60, rng);
    const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
    const VertexPartition tdv = ComputeTotalDegreePartition(g, nullptr);
    for (const auto& orbit : orbits.cells) {
      const uint32_t cell = tdv.cell_of[orbit.front()];
      for (VertexId v : orbit) EXPECT_EQ(tdv.cell_of[v], cell);
    }
  }
}

TEST(TotalDegreePartitionTest, EqualsOrbitsOnTrees) {
  // For trees, colour refinement decides isomorphism, so TDV = Orb.
  const Graph t = MakeBalancedTree(2, 3);
  EXPECT_TRUE(ComputeTotalDegreePartition(t, nullptr) ==
              ComputeAutomorphismPartition(t, {}, nullptr));
}

TEST(TotalDegreePartitionTest, StrictlyCoarserOnRegularRigidGraph) {
  // The Frucht graph is 3-regular with trivial automorphism group: TDV is
  // the unit partition but Orb is discrete.
  // Hamiltonian cycle plus LCF [-5,-2,-4,2,5,-2,2,5,-2,-5,4,2] chords.
  GraphBuilder b(12);
  for (int i = 0; i < 12; ++i) b.AddEdge(i, (i + 1) % 12);
  const std::pair<int, int> chords[] = {{0, 7}, {1, 11}, {2, 10},
                                        {3, 5}, {4, 9},  {6, 8}};
  for (const auto& [u, v] : chords) b.AddEdge(u, v);
  const Graph frucht = b.Build();
  ASSERT_EQ(frucht.NumEdges(), 18u);
  EXPECT_EQ(ComputeTotalDegreePartition(frucht, nullptr).NumCells(), 1u);
  EXPECT_EQ(ComputeAutomorphismPartition(frucht, {}, nullptr).NumCells(), 12u);
}

}  // namespace
}  // namespace ksym
