// Tests for canonical forms and isomorphism testing.

#include "aut/canonical.h"

#include <gtest/gtest.h>

#include <numeric>

#include "aut/isomorphism.h"
#include "aut/refinement.h"
#include "aut/search.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "perm/schreier_sims.h"

namespace ksym {
namespace {

Graph RandomRelabel(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> perm(g.NumVertices());
  std::iota(perm.begin(), perm.end(), 0u);
  rng.Shuffle(perm.begin(), perm.end());
  return RelabelGraph(g, perm);
}

TEST(CanonicalTest, LabelingIsValidPermutation) {
  const Graph g = MakePetersen();
  const CanonicalForm form = ComputeCanonicalForm(g);
  EXPECT_EQ(form.labeling.Size(), 10u);
  EXPECT_EQ(form.edges.size(), 15u);
}

TEST(CanonicalTest, InvariantUnderRelabeling) {
  for (const Graph& g :
       {MakePetersen(), MakePath(8), MakeStar(7), MakeGrid(3, 4),
        MakeBalancedTree(2, 3)}) {
    const CanonicalForm reference = ComputeCanonicalForm(g);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const CanonicalForm relabeled =
          ComputeCanonicalForm(RandomRelabel(g, seed));
      EXPECT_TRUE(reference == relabeled);
    }
  }
}

TEST(CanonicalTest, RandomGraphsInvariantUnderRelabeling) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = ErdosRenyiGnm(30, 50, rng);
    const CanonicalForm a = ComputeCanonicalForm(g);
    const CanonicalForm b = ComputeCanonicalForm(RandomRelabel(g, trial + 99));
    EXPECT_TRUE(a == b);
  }
}

TEST(CanonicalTest, DistinguishesNonIsomorphicSameDegreeSequence) {
  // C_6 vs two disjoint triangles: both 2-regular on 6 vertices.
  const Graph c6 = MakeCycle(6);
  const Graph triangles = DisjointUnion(MakeCycle(3), MakeCycle(3));
  EXPECT_FALSE(ComputeCanonicalForm(c6) == ComputeCanonicalForm(triangles));
}

TEST(CanonicalTest, ColorsParticipateInForm) {
  const Graph p3 = MakePath(3);
  const CanonicalForm a = ComputeCanonicalForm(p3, {0, 1, 0});
  const CanonicalForm b = ComputeCanonicalForm(p3, {1, 0, 1});
  EXPECT_FALSE(a == b);  // Different colour patterns.
}

TEST(IsomorphismTest, IsomorphicPairs) {
  EXPECT_TRUE(AreIsomorphic(MakeCycle(5), RandomRelabel(MakeCycle(5), 3)));
  EXPECT_TRUE(AreIsomorphic(MakePetersen(), RandomRelabel(MakePetersen(), 4)));
  Rng rng(43);
  const Graph g = BarabasiAlbert(60, 2, rng);
  EXPECT_TRUE(AreIsomorphic(g, RandomRelabel(g, 5)));
}

TEST(IsomorphismTest, NonIsomorphicPairs) {
  EXPECT_FALSE(AreIsomorphic(MakeCycle(6),
                             DisjointUnion(MakeCycle(3), MakeCycle(3))));
  EXPECT_FALSE(AreIsomorphic(MakePath(5), MakeStar(5)));
  EXPECT_FALSE(AreIsomorphic(MakeCycle(5), MakeCycle(6)));
}

TEST(IsomorphismTest, ColoredIsomorphismRespectsColors) {
  const Graph p2a = MakePath(2);
  const Graph p2b = MakePath(2);
  EXPECT_TRUE(AreIsomorphic(p2a, p2b, {0, 1}, {1, 0}));   // Swap works.
  EXPECT_FALSE(AreIsomorphic(p2a, p2b, {0, 0}, {0, 1}));  // Profile differs.

  // Path 0-1-2: centre coloured differently blocks matching to an
  // end-coloured variant.
  const Graph p3 = MakePath(3);
  EXPECT_TRUE(AreIsomorphic(p3, p3, {0, 1, 0}, {0, 1, 0}));
  EXPECT_FALSE(AreIsomorphic(p3, p3, {0, 1, 0}, {1, 0, 0}));
}

TEST(IsomorphismTest, EmptyGraphs) {
  EXPECT_TRUE(AreIsomorphic(Graph(0), Graph(0)));
  EXPECT_TRUE(AreIsomorphic(Graph(3), Graph(3)));
  EXPECT_FALSE(AreIsomorphic(Graph(3), Graph(4)));
}

// The 4x4 rook's graph: vertices (i, j), adjacent iff same row or column.
Graph MakeRook4x4() {
  GraphBuilder b(16);
  auto id = [](int i, int j) { return static_cast<VertexId>(4 * i + j); };
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int jj = j + 1; jj < 4; ++jj) b.AddEdge(id(i, j), id(i, jj));
      for (int ii = i + 1; ii < 4; ++ii) b.AddEdge(id(i, j), id(ii, j));
    }
  }
  return b.Build();
}

// The Shrikhande graph: Cayley graph of Z4 x Z4 with connection set
// {±(1,0), ±(0,1), ±(1,1)}.
Graph MakeShrikhande() {
  GraphBuilder b(16);
  auto id = [](int x, int y) {
    return static_cast<VertexId>(4 * ((x % 4 + 4) % 4) + ((y % 4 + 4) % 4));
  };
  const int deltas[][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}};
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      for (const auto& d : deltas) {
        b.AddEdge(id(x, y), id(x + d[0], y + d[1]));
      }
    }
  }
  return b.Build();
}

TEST(IsomorphismTest, RookVsShrikhandeStronglyRegularPair) {
  // Both are SRG(16, 6, 2, 2): colour refinement cannot tell them apart
  // (the unit partition is equitable for both), so this exercises the
  // search beyond 1-WL power.
  const Graph rook = MakeRook4x4();
  const Graph shrikhande = MakeShrikhande();
  ASSERT_EQ(rook.NumEdges(), 48u);
  ASSERT_EQ(shrikhande.NumEdges(), 48u);
  EXPECT_EQ(EquitablePartition(rook, {}).size(), 1u);
  EXPECT_EQ(EquitablePartition(shrikhande, {}).size(), 1u);
  EXPECT_FALSE(AreIsomorphic(rook, shrikhande));
  // Both are vertex-transitive and isomorphic to themselves relabelled.
  EXPECT_TRUE(AreIsomorphic(rook, RandomRelabel(rook, 17)));
  EXPECT_TRUE(AreIsomorphic(shrikhande, RandomRelabel(shrikhande, 18)));
}

TEST(IsomorphismTest, RookAndShrikhandeGroupOrders) {
  // |Aut(rook 4x4)| = 2 * (4!)^2 = 1152; |Aut(Shrikhande)| = 192.
  const AutomorphismResult rook_aut = ComputeAutomorphisms(MakeRook4x4(), {}, nullptr);
  EXPECT_EQ(GroupOrderFromGenerators(16, rook_aut.generators), 1152.0);
  const AutomorphismResult shr_aut = ComputeAutomorphisms(MakeShrikhande(), {}, nullptr);
  EXPECT_EQ(GroupOrderFromGenerators(16, shr_aut.generators), 192.0);
}

TEST(IsomorphismTest, RegularNonIsomorphicPair) {
  // K_{3,3} vs the triangular prism: both 3-regular on 6 vertices.
  GraphBuilder prism(6);
  prism.AddEdge(0, 1);
  prism.AddEdge(1, 2);
  prism.AddEdge(2, 0);
  prism.AddEdge(3, 4);
  prism.AddEdge(4, 5);
  prism.AddEdge(5, 3);
  prism.AddEdge(0, 3);
  prism.AddEdge(1, 4);
  prism.AddEdge(2, 5);
  EXPECT_FALSE(AreIsomorphic(MakeCompleteBipartite(3, 3), prism.Build()));
}

}  // namespace
}  // namespace ksym
