// Tests for the baselines: naive anonymization, random perturbation,
// k-degree anonymity (Liu-Terzi).

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "aut/isomorphism.h"
#include "perm/permutation.h"
#include "baseline/kcopy.h"
#include "baseline/kdegree.h"
#include "baseline/naive.h"
#include "baseline/perturbation.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "ksym/verifier.h"

namespace ksym {
namespace {

TEST(NaiveTest, ProducesIsomorphicGraph) {
  Rng rng(173);
  const Graph g = MakePetersen();
  const NaiveAnonymization naive = NaiveAnonymize(g, rng);
  EXPECT_TRUE(AreIsomorphic(g, naive.graph));
  EXPECT_TRUE(IsValidPermutation(naive.pseudonym));
}

TEST(NaiveTest, PseudonymMapsEdges) {
  Rng rng(179);
  const Graph g = MakeCycle(10);
  const NaiveAnonymization naive = NaiveAnonymize(g, rng);
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_TRUE(naive.graph.HasEdge(naive.pseudonym[u], naive.pseudonym[v]));
  }
}

TEST(PerturbationTest, ZeroFractionIsIdentity) {
  Rng rng(181);
  const Graph g = MakePetersen();
  const auto result = RandomEdgePerturbation(g, 0.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->graph == g);
}

TEST(PerturbationTest, PreservesEdgeCount) {
  Rng rng(191);
  const Graph g = ErdosRenyiGnm(50, 100, rng);
  const auto result = RandomEdgePerturbation(g, 0.2, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges_deleted, 20u);
  EXPECT_EQ(result->edges_added, 20u);
  EXPECT_EQ(result->graph.NumEdges(), g.NumEdges());
}

TEST(PerturbationTest, ChangesStructure) {
  Rng rng(193);
  const Graph g = MakeCycle(30);
  const auto result = RandomEdgePerturbation(g, 0.5, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->graph == g);
}

TEST(PerturbationTest, RejectsBadFraction) {
  Rng rng(197);
  EXPECT_FALSE(RandomEdgePerturbation(MakeCycle(5), -0.1, rng).ok());
  EXPECT_FALSE(RandomEdgePerturbation(MakeCycle(5), 1.5, rng).ok());
}

TEST(DegreeSequenceDpTest, AlreadyAnonymousIsFree) {
  // Four vertices of equal degree: k=2 needs no increase.
  const auto targets = AnonymizeDegreeSequence({3, 3, 3, 3}, 2);
  EXPECT_EQ(targets, (std::vector<size_t>{3, 3, 3, 3}));
}

TEST(DegreeSequenceDpTest, GroupsOfAtLeastK) {
  const std::vector<size_t> degrees = {5, 4, 3, 2, 1, 1};
  for (uint32_t k : {2u, 3u}) {
    const auto targets = AnonymizeDegreeSequence(degrees, k);
    // Targets dominate inputs.
    for (size_t i = 0; i < degrees.size(); ++i) {
      EXPECT_GE(targets[i], degrees[i]);
    }
    // Every target value occurs at least k times.
    std::map<size_t, size_t> mult;
    for (size_t t : targets) ++mult[t];
    for (const auto& [value, count] : mult) {
      (void)value;
      EXPECT_GE(count, k);
    }
  }
}

TEST(DegreeSequenceDpTest, OptimalCostForKnownCase) {
  // Degrees {4, 2, 2, 1}, k=2: best grouping {4,2},{2,1} costs 2+1=3;
  // one group {4,2,2,1} costs 0+2+2+3=7. DP must pick 3.
  const auto targets = AnonymizeDegreeSequence({4, 2, 2, 1}, 2);
  uint64_t cost = 0;
  const std::vector<size_t> degrees = {4, 2, 2, 1};
  for (size_t i = 0; i < degrees.size(); ++i) cost += targets[i] - degrees[i];
  EXPECT_EQ(cost, 3u);
}

TEST(KDegreeTest, OutputIsKDegreeAnonymousSupergraph) {
  Rng rng(199);
  for (uint32_t k : {2u, 3u, 5u}) {
    const Graph g = BarabasiAlbert(60, 2, rng);
    const auto result = KDegreeAnonymize(g, k, rng);
    ASSERT_TRUE(result.ok()) << "k=" << k;
    EXPECT_TRUE(IsKDegreeAnonymous(result->graph, k));
    // Supergraph: all original edges present.
    for (const auto& [u, v] : g.Edges()) {
      EXPECT_TRUE(result->graph.HasEdge(u, v));
    }
    EXPECT_EQ(result->graph.NumEdges(), g.NumEdges() + result->edges_added);
  }
}

TEST(KDegreeTest, KOneIsIdentity) {
  Rng rng(211);
  const Graph g = MakePath(7);
  const auto result = KDegreeAnonymize(g, 1, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->graph == g);
}

TEST(KDegreeTest, RejectsTooFewVertices) {
  Rng rng(223);
  EXPECT_FALSE(KDegreeAnonymize(MakePath(3), 5, rng).ok());
}

TEST(KDegreeTest, IsKDegreeAnonymousChecker) {
  EXPECT_TRUE(IsKDegreeAnonymous(MakeCycle(6), 6));   // All degree 2.
  EXPECT_FALSE(IsKDegreeAnonymous(MakeStar(5), 2));   // Unique hub degree.
  EXPECT_TRUE(IsKDegreeAnonymous(MakeStar(5), 1));
}

TEST(KDegreeTest, SkewedGraphStillRealizable) {
  Rng rng(227);
  // A star plus scattered edges: the hub forces big degree raises.
  GraphBuilder b(30);
  for (VertexId v = 1; v < 20; ++v) b.AddEdge(0, v);
  b.AddEdge(20, 21);
  b.AddEdge(22, 23);
  b.AddEdge(24, 25);
  const Graph g = b.Build();
  const auto result = KDegreeAnonymize(g, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKDegreeAnonymous(result->graph, 3));
}

TEST(KCopyTest, BuildsDisjointCopies) {
  const Graph g = MakePetersen();
  const auto result = KCopyAnonymize(g, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.NumVertices(), 30u);
  EXPECT_EQ(result->graph.NumEdges(), 45u);
  EXPECT_EQ(result->vertices_added, 20u);
  EXPECT_EQ(result->edges_added, 30u);
  // Copy c of edge (u, v) exists; no cross-copy edges.
  for (const auto& [u, v] : g.Edges()) {
    for (VertexId c = 0; c < 3; ++c) {
      EXPECT_TRUE(result->graph.HasEdge(u + 10 * c, v + 10 * c));
    }
    EXPECT_FALSE(result->graph.HasEdge(u, v + 10));
  }
}

TEST(KCopyTest, PartitionIsSubAutomorphismAndKSymmetric) {
  Rng rng(241);
  const Graph g = ErdosRenyiGnm(15, 25, rng);
  const auto result = KCopyAnonymize(g, 3);
  ASSERT_TRUE(result.ok());
  for (const auto& cell : result->partition.cells) {
    EXPECT_EQ(cell.size(), 3u);
  }
  EXPECT_TRUE(IsCellwiseSubAutomorphismPartition(result->graph,
                                                 result->partition));
  EXPECT_TRUE(IsKSymmetric(result->graph, 3));
}

TEST(KCopyTest, KOneIsIdentity) {
  const Graph g = MakeCycle(5);
  const auto result = KCopyAnonymize(g, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->graph == g);
  EXPECT_EQ(result->vertices_added, 0u);
}

TEST(KCopyTest, RejectsZeroK) {
  EXPECT_FALSE(KCopyAnonymize(MakeCycle(4), 0).ok());
}

}  // namespace
}  // namespace ksym
