// Tests for ordered partitions and equitable (colour) refinement.

#include "aut/refinement.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace ksym {
namespace {

// Checks the equitability property: for any two cells C, W, every vertex of
// C has the same number of neighbours in W.
void ExpectEquitable(const Graph& graph,
                     const std::vector<std::vector<VertexId>>& cells) {
  std::vector<uint32_t> cell_of(graph.NumVertices());
  for (uint32_t c = 0; c < cells.size(); ++c) {
    for (VertexId v : cells[c]) cell_of[v] = c;
  }
  for (const auto& cell : cells) {
    std::vector<size_t> reference(cells.size(), 0);
    bool first = true;
    for (VertexId v : cell) {
      std::vector<size_t> counts(cells.size(), 0);
      for (VertexId u : graph.Neighbors(v)) ++counts[cell_of[u]];
      if (first) {
        reference = counts;
        first = false;
      } else {
        EXPECT_EQ(counts, reference);
      }
    }
  }
}

TEST(OrderedPartitionTest, UnitPartition) {
  OrderedPartition p(5, {});
  EXPECT_EQ(p.NumCells(), 1u);
  EXPECT_FALSE(p.IsDiscrete());
  EXPECT_EQ(p.CellSizeAt(0), 5u);
}

TEST(OrderedPartitionTest, ColorsOrderCells) {
  OrderedPartition p(4, {2, 0, 2, 1});
  EXPECT_EQ(p.NumCells(), 3u);
  const auto cells = p.Cells();
  EXPECT_EQ(cells[0], (std::vector<VertexId>{1}));       // Color 0.
  EXPECT_EQ(cells[1], (std::vector<VertexId>{3}));       // Color 1.
  ASSERT_EQ(cells[2].size(), 2u);                        // Color 2.
}

TEST(OrderedPartitionTest, IndividualizeSplitsCell) {
  OrderedPartition p(4, {});
  const uint32_t singleton = p.Individualize(2);
  EXPECT_EQ(singleton, 3u);  // Carved from the tail of the segment.
  EXPECT_EQ(p.NumCells(), 2u);
  EXPECT_EQ(p.CellSizeAt(singleton), 1u);
  EXPECT_EQ(p.CellAt(singleton)[0], 2u);
  EXPECT_EQ(p.CellSizeAt(0), 3u);
}

TEST(OrderedPartitionTest, RevertRestoresCells) {
  OrderedPartition p(6, {});
  const size_t mark = p.JournalMark();
  p.Individualize(4);
  EXPECT_EQ(p.NumCells(), 2u);
  p.RevertTo(mark);
  EXPECT_EQ(p.NumCells(), 1u);
  EXPECT_EQ(p.CellSizeAt(p.CellStartOf(4)), 6u);
}

TEST(OrderedPartitionTest, TargetCellIsFirstNonSingleton) {
  OrderedPartition p(6, {2, 0, 0, 1, 1, 2});
  // Cells in colour order: {1,2}, {3,4}, {0,5}. First non-singleton: {1,2}.
  const uint32_t target = p.TargetCell();
  EXPECT_EQ(p.CellSizeAt(target), 2u);
  const auto cell = p.CellAt(target);
  EXPECT_TRUE(std::find(cell.begin(), cell.end(), 1u) != cell.end());
  EXPECT_TRUE(std::find(cell.begin(), cell.end(), 2u) != cell.end());

  // Discrete partitions have no target.
  OrderedPartition discrete(3, {0, 1, 2});
  EXPECT_EQ(discrete.TargetCell(), OrderedPartition::kNoCell);
}

TEST(OrderedPartitionTest, DiscreteToLabeling) {
  OrderedPartition p(3, {2, 0, 1});
  ASSERT_TRUE(p.IsDiscrete());
  const Permutation lab = p.ToLabeling();
  EXPECT_EQ(lab.Image(1), 0u);  // Color 0 first.
  EXPECT_EQ(lab.Image(2), 1u);
  EXPECT_EQ(lab.Image(0), 2u);
}

TEST(RefinementTest, RegularGraphStaysUnit) {
  // Colour refinement cannot split a regular graph's unit partition.
  const Graph c6 = MakeCycle(6);
  const auto cells = EquitablePartition(c6, {});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].size(), 6u);
}

TEST(RefinementTest, StarSplitsHubFromLeaves) {
  const auto cells = EquitablePartition(MakeStar(6), {});
  ASSERT_EQ(cells.size(), 2u);
  // One singleton cell (hub), one 5-cell (leaves).
  const size_t small = std::min(cells[0].size(), cells[1].size());
  const size_t large = std::max(cells[0].size(), cells[1].size());
  EXPECT_EQ(small, 1u);
  EXPECT_EQ(large, 5u);
}

TEST(RefinementTest, PathRefinesByDistanceToEnds) {
  // P_5: cells {0,4}, {1,3}, {2}.
  const auto cells = EquitablePartition(MakePath(5), {});
  EXPECT_EQ(cells.size(), 3u);
  ExpectEquitable(MakePath(5), cells);
}

TEST(RefinementTest, ResultIsAlwaysEquitable) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = ErdosRenyiGnm(40, 70, rng);
    ExpectEquitable(g, EquitablePartition(g, {}));
  }
}

TEST(RefinementTest, RespectsInitialColors) {
  // C_4 with one coloured vertex: refinement separates by distance to it.
  const Graph c4 = MakeCycle(4);
  const auto cells = EquitablePartition(c4, RefinementOptions{.colors = {1, 0, 0, 0}});
  // {0}, {1,3}, {2}.
  EXPECT_EQ(cells.size(), 3u);
  ExpectEquitable(c4, cells);
}

TEST(RefinementTest, TraceHashIsInvariantUnderRelabeling) {
  // The trace hash of isomorphic graphs (same initial colouring pattern)
  // must match.
  const Graph g1 = MakePath(6);
  GraphBuilder b(6);  // The same path written backwards: 5-4-3-2-1-0.
  for (VertexId i = 0; i + 1 < 6; ++i) b.AddEdge(5 - i, 4 - i);
  const Graph g2 = b.Build();

  OrderedPartition p1(6, {});
  OrderedPartition p2(6, {});
  Refiner r1(g1);
  Refiner r2(g2);
  EXPECT_EQ(r1.RefineAll(p1), r2.RefineAll(p2));
}

TEST(RefinementTest, TraceHashDiffersForDifferentStructures) {
  OrderedPartition p1(6, {});
  OrderedPartition p2(6, {});
  const Graph path = MakePath(6);
  const Graph star = MakeStar(6);
  Refiner r1(path);
  Refiner r2(star);
  EXPECT_NE(r1.RefineAll(p1), r2.RefineAll(p2));
}

TEST(RefinementTest, IndividualizeThenRefineReachesDiscreteOnPath) {
  const Graph p4 = MakePath(4);  // Cells after refine: {0,3}, {1,2}.
  OrderedPartition partition(4, {});
  Refiner refiner(p4);
  refiner.RefineAll(partition);
  EXPECT_EQ(partition.NumCells(), 2u);
  const uint32_t start = partition.Individualize(0);
  refiner.RefineFrom(partition, start);
  EXPECT_TRUE(partition.IsDiscrete());
}

TEST(RefinementTest, EquitablePartitionCellsCoverAllVertices) {
  Rng rng(37);
  const Graph g = BarabasiAlbert(120, 2, rng);
  const auto cells = EquitablePartition(g, {});
  size_t total = 0;
  std::vector<bool> seen(g.NumVertices(), false);
  for (const auto& cell : cells) {
    for (VertexId v : cell) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, g.NumVertices());
}

}  // namespace
}  // namespace ksym
