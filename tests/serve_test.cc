// Tests for the ksym_serve stack (DESIGN.md §12): wire framing (round
// trips, malformed input, a deterministic fuzz pass), the checksum-keyed
// GraphCache (hits, eviction, pinning), the request-level API (CLI/daemon
// equivalence, batched-vs-solo bit-equality), the ArgParser the tools share,
// and the Server end to end over a real unix socket — including admission
// rejection, queued-deadline expiry, and server-side sample batching.

#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "graph/generators.h"
#include "graph/io.h"
#include "serve/api.h"
#include "serve/cache.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "serve_test_util.h"
#include "tool_common.h"

namespace ksym {
namespace serve {
namespace {

using serve_test::ReadFileBytes;
using serve_test::TempPath;
using serve_test::TestClient;
using serve_test::WriteFileBytes;

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(WireTest, RoundTripAllKinds) {
  WireObject object;
  object.Set("s", WireValue::String("hello"));
  object.Set("u", WireValue::Uint(UINT64_MAX));
  object.Set("i", WireValue::Int(-42));
  object.Set("d", WireValue::Double(1.5));
  object.Set("b", WireValue::Bool(true));
  object.Set("f", WireValue::Bool(false));

  const std::string line = SerializeWireLine(object);
  const auto parsed = ParseWireLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s"), "hello");
  EXPECT_EQ(parsed->GetUint("u"), UINT64_MAX);
  ASSERT_NE(parsed->Find("i"), nullptr);
  EXPECT_EQ(parsed->Find("i")->kind, WireValue::Kind::kInt);
  EXPECT_EQ(parsed->Find("i")->i, -42);
  EXPECT_EQ(parsed->GetDouble("d"), 1.5);
  EXPECT_TRUE(parsed->GetBool("b"));
  EXPECT_FALSE(parsed->GetBool("f", true));
  // Deterministic: re-serializing reproduces the exact line.
  EXPECT_EQ(SerializeWireLine(parsed.value()), line);
}

TEST(WireTest, StringEscapesRoundTrip) {
  const std::string nasty = "quote\" back\\slash\nnew\ttab\rret\x01ctl";
  WireObject object;
  object.Set("k", WireValue::String(nasty));
  const auto parsed = ParseWireLine(SerializeWireLine(object));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("k"), nasty);
}

TEST(WireTest, UnicodeEscapeDecodesToUtf8) {
  const auto parsed = ParseWireLine("{\"k\":\"\\u00e9\\u20ac\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("k"), "\xc3\xa9\xe2\x82\xac");  // é €
}

TEST(WireTest, ToleratesWhitespaceAndTrailingNewline) {
  const auto parsed = ParseWireLine("{ \"a\" : 1 , \"b\" : true }\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetUint("a"), 1u);
  EXPECT_TRUE(parsed->GetBool("b"));
}

TEST(WireTest, EmptyObjectParses) {
  const auto parsed = ParseWireLine("{}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->fields.empty());
}

TEST(WireTest, MalformedInputsRejected) {
  const char* bad[] = {
      "",                          // no object
      "{",                         // unterminated
      "{\"a\":}",                  // missing value
      "{\"a\":1",                  // no closing brace
      "{\"a\":1}x",                // trailing bytes
      "{\"a\":1,\"a\":2}",         // duplicate key
      "{\"a\":nul}",               // bad literal
      "{\"a\":null}",              // null is not a wire kind
      "{\"a\":[1]}",               // arrays unsupported
      "{\"a\":{\"b\":1}}",         // nesting unsupported
      "{\"a\":\"unterminated",     // unterminated string
      "{\"a\":\"\\q\"}",           // unknown escape
      "{\"a\":\"\\ud800\"}",       // surrogate escape
      "{\"a\":1e}",                // bad exponent
      "{\"a\":--3}",               // bad number
      "{a:1}",                     // unquoted key
      "plain text",                // not an object
  };
  for (const char* line : bad) {
    const auto parsed = ParseWireLine(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
  }
}

TEST(WireTest, GetUintAcceptsNonNegativeInt) {
  WireObject object;
  object.Set("a", WireValue::Int(7));
  object.Set("b", WireValue::Int(-7));
  EXPECT_EQ(object.GetUint("a"), 7u);
  EXPECT_EQ(object.GetUint("b", 99), 99u);  // Negative: fallback.
  EXPECT_EQ(object.GetDouble("b"), -7.0);
}

// The parser must be total: arbitrary bytes and mutations of a valid line
// either parse or return a status — never crash. Deterministic xorshift so
// failures replay.
TEST(WireTest, FuzzNeverCrashes) {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  // Random byte soup.
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const size_t len = next() % 64;
    for (size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(next() % 256));
    }
    const auto parsed = ParseWireLine(line);
    if (parsed.ok()) {
      // Whatever parsed must re-serialize and re-parse.
      const auto again = ParseWireLine(SerializeWireLine(parsed.value()));
      EXPECT_TRUE(again.ok());
    }
  }

  // Single-byte mutations of a valid request line.
  const std::string valid =
      "{\"op\":\"sample\",\"release\":\"r.ksymcsr\",\"samples\":4,"
      "\"seed\":42,\"exact\":true,\"rate\":-1.5e2}";
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    for (int m = 0; m < 4; ++m) {
      std::string line = valid;
      line[pos] = static_cast<char>(next() % 256);
      (void)ParseWireLine(line);  // Must not crash; status content is free.
    }
  }
}

// ---------------------------------------------------------------------------
// Fixtures: small graphs on disk
// ---------------------------------------------------------------------------

std::string WriteTestCsr(const std::string& name, const Graph& graph) {
  const std::string path = TempPath(name);
  std::vector<uint64_t> labels(graph.NumVertices());
  std::iota(labels.begin(), labels.end(), uint64_t{0});
  const Status status = WriteCsrFile(graph, labels, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

std::string WriteTestEdges(const std::string& name) {
  const std::string path = TempPath(name);
  WriteFileBytes(path, "0 1\n0 2\n0 3\n1 2\n3 4\n4 5\n4 6\n5 6\n");
  return path;
}

/// Anonymizes the 8-vertex test graph into a binary release file.
std::string WriteTestRelease(const std::string& name) {
  AnonymizeRequest request;
  request.input = WriteTestEdges(name + ".edges");
  request.output = TempPath(name + ".ksymcsr");
  request.k = 2;
  request.binary = true;
  const auto response = RunAnonymize(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return request.output;
}

// ---------------------------------------------------------------------------
// GraphCache
// ---------------------------------------------------------------------------

TEST(GraphCacheTest, SecondLookupHits) {
  const std::string path = WriteTestCsr("cache_hit.ksymcsr", MakeCycle(8));
  GraphCache cache(size_t{1} << 20);

  bool hit = true;
  const auto first = cache.GetGraph(path, &hit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_EQ((*first)->graph.NumVertices(), 8u);

  const auto second = cache.GetGraph(path, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get());  // Same mapping, not a reload.

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(GraphCacheTest, KeyedByChecksumNotPath) {
  const std::string path = WriteTestCsr("cache_key_a.ksymcsr", MakeCycle(8));
  const std::string copy = TempPath("cache_key_b.ksymcsr");
  WriteFileBytes(copy, ReadFileBytes(path));

  GraphCache cache(size_t{1} << 20);
  bool hit = true;
  ASSERT_TRUE(cache.GetGraph(path, &hit).ok());
  EXPECT_FALSE(hit);
  // Different path, same bytes: the header checksum matches, so it hits.
  ASSERT_TRUE(cache.GetGraph(copy, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(GraphCacheTest, EvictsPastCapButNeverUnmapsPins) {
  const std::string path_a = WriteTestCsr("evict_a.ksymcsr", MakeCycle(8));
  const std::string path_b = WriteTestCsr("evict_b.ksymcsr", MakePath(9));

  GraphCache cache(1);  // Every entry alone exceeds the cap.
  const auto a = cache.GetGraph(path_a);
  ASSERT_TRUE(a.ok());
  // The just-inserted entry is always admitted, even over the cap.
  EXPECT_EQ(cache.stats().entries, 1u);

  const auto b = cache.GetGraph(path_b);
  ASSERT_TRUE(b.ok());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // A was evicted to admit B.
  EXPECT_GE(stats.evictions, 1u);

  // The pinned mapping survives its eviction.
  EXPECT_EQ((*a)->graph.NumVertices(), 8u);
  EXPECT_EQ((*b)->graph.NumVertices(), 9u);

  // A is genuinely gone: looking it up again is a miss.
  bool hit = true;
  ASSERT_TRUE(cache.GetGraph(path_a, &hit).ok());
  EXPECT_FALSE(hit);
}

TEST(GraphCacheTest, ReleaseLookupHitsAndBypassCounts) {
  const std::string release = WriteTestRelease("cache_release");
  GraphCache cache(size_t{1} << 20);

  bool hit = true;
  const auto first = cache.GetRelease(release, &hit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(hit);
  const auto second = cache.GetRelease(release, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get());

  cache.RecordBypass();
  EXPECT_EQ(cache.stats().bypasses, 1u);
}

TEST(GraphCacheTest, MissingFileIsAnErrorNotAnEntry) {
  GraphCache cache(size_t{1} << 20);
  EXPECT_FALSE(cache.GetGraph(TempPath("no_such.ksymcsr")).ok());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Request wire decoding
// ---------------------------------------------------------------------------

TEST(RequestDecodeTest, AuditDefaultsAndFields) {
  const auto minimal = AuditRequestFromWire(
      ParseWireLine("{\"op\":\"audit\",\"input\":\"g.ksymcsr\"}").value());
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_EQ(minimal->input, "g.ksymcsr");
  EXPECT_EQ(minimal->k, 5u);
  EXPECT_FALSE(minimal->tdv);
  EXPECT_EQ(minimal->threads, 1u);

  const auto full = AuditRequestFromWire(
      ParseWireLine("{\"op\":\"audit\",\"id\":\"x\",\"deadline_ms\":5,"
                    "\"input\":\"g\",\"k\":3,\"tdv\":true,\"threads\":2}")
          .value());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->k, 3u);
  EXPECT_TRUE(full->tdv);
  EXPECT_EQ(full->threads, 2u);
}

TEST(RequestDecodeTest, UnknownFieldRejected) {
  const auto decoded = AuditRequestFromWire(
      ParseWireLine("{\"op\":\"audit\",\"input\":\"g\",\"kk\":3}").value());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("kk"), std::string::npos);
}

TEST(RequestDecodeTest, SampleDefaults) {
  const auto decoded = SampleRequestFromWire(
      ParseWireLine("{\"op\":\"sample\",\"release\":\"r\","
                    "\"output_prefix\":\"s\"}")
          .value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->samples, 10u);
  EXPECT_EQ(decoded->seed, 42u);
  EXPECT_FALSE(decoded->exact);
  EXPECT_FALSE(decoded->binary);
}

// ---------------------------------------------------------------------------
// Request API: cache transparency and batch bit-equality
// ---------------------------------------------------------------------------

TEST(ApiTest, AuditReportIdenticalWithAndWithoutCache) {
  AuditRequest request;
  request.input = WriteTestCsr("api_audit.ksymcsr", MakePetersen());
  request.k = 3;

  const auto uncached = RunAudit(request, nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();

  GraphCache cache(size_t{1} << 20);
  const auto cold = RunAudit(request, &cache);
  ASSERT_TRUE(cold.ok());
  const auto warm = RunAudit(request, &cache);
  ASSERT_TRUE(warm.ok());

  // The report channel is byte-stable across load paths; only the log
  // (timings, cache state) may differ.
  EXPECT_EQ(uncached->report, cold->report);
  EXPECT_EQ(uncached->report, warm->report);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ApiTest, TextInputBypassesCache) {
  AuditRequest request;
  request.input = WriteTestEdges("api_text.edges");
  request.k = 2;
  GraphCache cache(size_t{1} << 20);
  const auto response = RunAudit(request, &cache);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ApiTest, ErrorsSurfaceAsStatuses) {
  AuditRequest audit;
  audit.input = TempPath("missing_input.edges");
  EXPECT_FALSE(RunAudit(audit).ok());

  SampleRequest sample;  // Missing release/prefix.
  EXPECT_FALSE(RunSample(sample).ok());
}

TEST(ApiTest, BatchedSamplingBitIdenticalToSolo) {
  const std::string release = WriteTestRelease("batch_rel");

  // Two requests with different seeds and sample counts.
  SampleRequest r0;
  r0.release = release;
  r0.samples = 3;
  r0.seed = 7;
  SampleRequest r1;
  r1.release = release;
  r1.samples = 2;
  r1.seed = 1234;

  // Solo runs.
  r0.output_prefix = TempPath("solo0");
  r1.output_prefix = TempPath("solo1");
  const auto solo0 = RunSample(r0);
  const auto solo1 = RunSample(r1);
  ASSERT_TRUE(solo0.ok()) << solo0.status().ToString();
  ASSERT_TRUE(solo1.ok()) << solo1.status().ToString();

  // Batched run of both, through a cache, with batch-level threading.
  GraphCache cache(size_t{1} << 20);
  SampleRequest b0 = r0;
  SampleRequest b1 = r1;
  b0.output_prefix = TempPath("batch0");
  b1.output_prefix = TempPath("batch1");
  const auto results = RunSampleBatch({b0, b1}, &cache, /*threads=*/3);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();

  // Every written sample is byte-identical to its solo twin.
  for (uint64_t i = 0; i < r0.samples; ++i) {
    const std::string suffix = "." + std::to_string(i) + ".edges";
    EXPECT_EQ(ReadFileBytes(TempPath("solo0") + suffix),
              ReadFileBytes(TempPath("batch0") + suffix))
        << "request 0 sample " << i;
  }
  for (uint64_t i = 0; i < r1.samples; ++i) {
    const std::string suffix = "." + std::to_string(i) + ".edges";
    EXPECT_EQ(ReadFileBytes(TempPath("solo1") + suffix),
              ReadFileBytes(TempPath("batch1") + suffix))
        << "request 1 sample " << i;
  }
}

// ---------------------------------------------------------------------------
// ArgParser
// ---------------------------------------------------------------------------

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (std::string& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(ArgParserTest, ParsesTypedFlags) {
  std::string input;
  uint32_t k = 5;
  uint64_t seed = 0;
  size_t bytes = 0;
  double rate = 0.0;
  bool tdv = false;
  ksym_tools::ArgParser parser("usage: test");
  parser.String("--input", &input, "in");
  parser.U32("--k", &k, "k");
  parser.U64("--seed", &seed, "seed");
  parser.Size("--bytes", &bytes, "bytes");
  parser.F64("--rate", &rate, "rate");
  parser.Flag("--tdv", &tdv, "tdv");

  std::vector<std::string> args = {"tool",   "--input", "g.edges", "--k",
                                   "3",      "--seed",  "99",      "--bytes",
                                   "4096",   "--rate",  "0.25",    "--tdv"};
  auto argv = Argv(args);
  parser.ParseOrExit(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(input, "g.edges");
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(seed, 99u);
  EXPECT_EQ(bytes, 4096u);
  EXPECT_EQ(rate, 0.25);
  EXPECT_TRUE(tdv);
}

TEST(ArgParserDeathTest, UnknownFlagExitsTwo) {
  std::vector<std::string> args = {"tool", "--bogus"};
  auto argv = Argv(args);
  ksym_tools::ArgParser parser("usage: test");
  EXPECT_EXIT(parser.ParseOrExit(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(2), "unknown flag '--bogus'");
}

TEST(ArgParserDeathTest, MissingValueExitsTwo) {
  std::vector<std::string> args = {"tool", "--k"};
  auto argv = Argv(args);
  uint32_t k = 0;
  ksym_tools::ArgParser parser("usage: test");
  parser.U32("--k", &k, "k");
  EXPECT_EXIT(parser.ParseOrExit(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(2), "expects a value");
}

TEST(ArgParserDeathTest, BadValueExitsTwo) {
  std::vector<std::string> args = {"tool", "--k", "banana"};
  auto argv = Argv(args);
  uint32_t k = 0;
  ksym_tools::ArgParser parser("usage: test");
  parser.U32("--k", &k, "k");
  EXPECT_EXIT(parser.ParseOrExit(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(2), "bad value 'banana'");
}

TEST(ArgParserDeathTest, HelpExitsZero) {
  std::vector<std::string> args = {"tool", "--help"};
  auto argv = Argv(args);
  ksym_tools::ArgParser parser("usage: test");
  EXPECT_EXIT(parser.ParseOrExit(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(0), "");
}

TEST(ArgParserDeathTest, FailUsageExitsTwo) {
  ksym_tools::ArgParser parser("usage: test");
  EXPECT_EXIT(parser.FailUsage("--input is required"),
              testing::ExitedWithCode(2), "--input is required");
}

// ---------------------------------------------------------------------------
// Server end to end
// ---------------------------------------------------------------------------

ServerOptions BaseOptions(const std::string& socket_name) {
  ServerOptions options;
  options.socket_path = TempPath(socket_name);
  options.thread_budget = 2;
  return options;
}

TEST(ServerTest, AuditMatchesCliByteForByteAndCaches) {
  AuditRequest request;
  request.input = WriteTestCsr("srv_audit.ksymcsr", MakePetersen());
  request.k = 3;
  const auto cli = RunAudit(request, nullptr);
  ASSERT_TRUE(cli.ok()) << cli.status().ToString();

  Server server(BaseOptions("srv_audit.sock"));
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.options().socket_path);
  ASSERT_TRUE(client.connected());

  const std::string line = "{\"op\":\"audit\",\"input\":\"" + request.input +
                           "\",\"k\":3}";
  for (int round = 0; round < 2; ++round) {
    const auto response = ParseWireLine(client.RoundTrip(line));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->GetString("status"), "ok");
    // The daemon's report is the CLI's stdout, byte for byte.
    EXPECT_EQ(response->GetString("report"), cli->report);
  }
  EXPECT_EQ(server.cache().stats().hits, 1u);
  EXPECT_EQ(server.cache().stats().misses, 1u);

  // Stats op reports the same through the wire.
  const auto stats = ParseWireLine(client.RoundTrip("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok());
  const std::string report = stats->GetString("report");
  EXPECT_NE(report.find("completed: 2\n"), std::string::npos) << report;
  EXPECT_NE(report.find("graph_cache_hits: 1\n"), std::string::npos)
      << report;
  // The plan cache reports the same counter set under its own prefix.
  EXPECT_NE(report.find("plan_cache_hits: 0\n"), std::string::npos) << report;
  EXPECT_NE(report.find("plan_cache_entries: 0\n"), std::string::npos)
      << report;
  server.Stop();
}

TEST(ServerTest, BadLinesAnswerErrorsAndCountParseErrors) {
  Server server(BaseOptions("srv_err.sock"));
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.options().socket_path);
  ASSERT_TRUE(client.connected());

  const auto garbage = ParseWireLine(client.RoundTrip("not json at all"));
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->GetString("status"), "error");

  const auto unknown_op =
      ParseWireLine(client.RoundTrip("{\"op\":\"explode\"}"));
  ASSERT_TRUE(unknown_op.ok());
  EXPECT_EQ(unknown_op->GetString("status"), "error");
  EXPECT_NE(unknown_op->GetString("error").find("unknown op"),
            std::string::npos);

  const auto bad_field = ParseWireLine(
      client.RoundTrip("{\"op\":\"audit\",\"input\":\"g\",\"zz\":1}"));
  ASSERT_TRUE(bad_field.ok());
  EXPECT_EQ(bad_field->GetString("status"), "error");

  // A request naming a missing file is accepted, then fails in execution.
  const auto missing = ParseWireLine(client.RoundTrip(
      "{\"op\":\"audit\",\"input\":\"" + TempPath("gone.ksymcsr") + "\"}"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->GetString("status"), "error");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.parse_errors, 3u);
  EXPECT_EQ(stats.failed, 1u);
  server.Stop();
}

TEST(ServerTest, IdIsEchoedFirst) {
  Server server(BaseOptions("srv_id.sock"));
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.options().socket_path);
  ASSERT_TRUE(client.connected());
  const std::string response =
      client.RoundTrip("{\"id\":\"req-17\",\"op\":\"stats\"}");
  EXPECT_EQ(response.rfind("{\"id\":\"req-17\",\"status\":\"ok\"", 0), 0u)
      << response;
  server.Stop();
}

TEST(ServerTest, FullQueueRejectsBusy) {
  ServerOptions options = BaseOptions("srv_busy.sock");
  options.thread_budget = 1;
  options.max_queue = 1;
  options.retry_after_ms = 250;
  options.start_paused = true;  // Park the worker so the queue stays full.
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient first(server.options().socket_path);
  ASSERT_TRUE(first.connected());
  std::string first_response;
  std::thread blocked([&] {
    first_response = first.RoundTrip("{\"op\":\"sleep\",\"ms\":0}");
  });
  while (server.stats().accepted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The queue now holds one job and nobody is draining: next arrival
  // bounces with the configured retry hint.
  TestClient second(server.options().socket_path);
  ASSERT_TRUE(second.connected());
  const auto busy =
      ParseWireLine(second.RoundTrip("{\"op\":\"sleep\",\"ms\":0}"));
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->GetString("status"), "busy");
  EXPECT_EQ(busy->GetUint("retry_after_ms"), 250u);

  server.Resume();
  blocked.join();
  const auto ok = ParseWireLine(first_response);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetString("status"), "ok");
  EXPECT_EQ(server.stats().rejected_busy, 1u);
  server.Stop();
}

TEST(ServerTest, QueuedDeadlineExpires) {
  ServerOptions options = BaseOptions("srv_deadline.sock");
  options.start_paused = true;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.options().socket_path);
  ASSERT_TRUE(client.connected());
  std::string response_line;
  std::thread waiting([&] {
    response_line =
        client.RoundTrip("{\"op\":\"sleep\",\"ms\":0,\"deadline_ms\":1}");
  });
  while (server.stats().accepted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the deadline lapse while the job sits in the paused queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();
  waiting.join();

  const auto response = ParseWireLine(response_line);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status"), "error");
  EXPECT_NE(response->GetString("error").find("deadline expired"),
            std::string::npos);
  EXPECT_EQ(server.stats().deadline_expired, 1u);
  server.Stop();
}

TEST(ServerTest, QueuedSamplesBatchAndMatchSoloBytes) {
  const std::string release = WriteTestRelease("srv_batch_rel");

  // Solo reference runs (no daemon).
  SampleRequest r0;
  r0.release = release;
  r0.samples = 2;
  r0.seed = 5;
  r0.output_prefix = TempPath("srv_solo0");
  SampleRequest r1 = r0;
  r1.seed = 6;
  r1.output_prefix = TempPath("srv_solo1");
  ASSERT_TRUE(RunSample(r0).ok());
  ASSERT_TRUE(RunSample(r1).ok());

  ServerOptions options = BaseOptions("srv_batch.sock");
  options.thread_budget = 1;  // One worker: it must drain both as a batch.
  options.start_paused = true;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  const auto request_line = [&](uint64_t seed, const std::string& prefix) {
    return "{\"op\":\"sample\",\"release\":\"" + release +
           "\",\"output_prefix\":\"" + prefix +
           "\",\"samples\":2,\"seed\":" + std::to_string(seed) + "}";
  };
  TestClient c0(server.options().socket_path);
  TestClient c1(server.options().socket_path);
  ASSERT_TRUE(c0.connected());
  ASSERT_TRUE(c1.connected());
  std::string l0, l1;
  std::thread t0(
      [&] { l0 = c0.RoundTrip(request_line(5, TempPath("srv_batch0"))); });
  std::thread t1(
      [&] { l1 = c1.RoundTrip(request_line(6, TempPath("srv_batch1"))); });
  while (server.stats().accepted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Resume();
  t0.join();
  t1.join();

  const auto p0 = ParseWireLine(l0);
  const auto p1 = ParseWireLine(l1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p0->GetString("status"), "ok") << p0->GetString("error");
  EXPECT_EQ(p1->GetString("status"), "ok") << p1->GetString("error");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 2u);

  // Batched daemon outputs == solo CLI outputs, byte for byte.
  for (int i = 0; i < 2; ++i) {
    const std::string suffix = "." + std::to_string(i) + ".edges";
    EXPECT_EQ(ReadFileBytes(TempPath("srv_solo0") + suffix),
              ReadFileBytes(TempPath("srv_batch0") + suffix));
    EXPECT_EQ(ReadFileBytes(TempPath("srv_solo1") + suffix),
              ReadFileBytes(TempPath("srv_batch1") + suffix));
  }
  server.Stop();
}

TEST(ServerTest, StopWithQueuedWorkDrainsCleanly) {
  ServerOptions options = BaseOptions("srv_stop.sock");
  options.start_paused = true;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.options().socket_path);
  ASSERT_TRUE(client.connected());
  std::string response_line;
  std::thread waiting(
      [&] { response_line = client.RoundTrip("{\"op\":\"sleep\",\"ms\":0}"); });
  while (server.stats().accepted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Stop() without Resume(): workers drain the queue before exiting, so the
  // blocked client is released (not deadlocked). Delivery of the response
  // races connection teardown — if a line did arrive, it must be the ok.
  server.Stop();
  waiting.join();
  EXPECT_EQ(server.stats().completed, 1u);
  if (!response_line.empty()) {
    const auto response = ParseWireLine(response_line);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->GetString("status"), "ok");
  }
}

}  // namespace
}  // namespace serve
}  // namespace ksym
