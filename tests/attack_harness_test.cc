// Tests for the ksym_attack adversary stack (DESIGN.md §14): per-model unit
// tests on hand-built graphs with known candidate sets, the naive-release
// baseline where the sybil attack must fully succeed, 1/2/4-thread
// bit-identity of every report surface, the pinned golden report on the
// checked-in graph, and the descriptive-error contract for manifest inputs.

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

#include "attack/adjacency.h"
#include "attack/community.h"
#include "attack/harness.h"
#include "attack/measures.h"
#include "attack/sybil.h"
#include "aut/orbits.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "ksym/anonymizer.h"
#include "serve/api.h"
#include "serve_test_util.h"

namespace ksym {
namespace {

using serve_test::ReadFileBytes;
using serve_test::TempPath;
using serve_test::WriteFileBytes;

// The golden host graph: the same BA(32, 2) the checked-in
// tests/testdata/attack_golden.ksymcsr was generated from.
Graph GoldenHostGraph() {
  Rng rng(5);
  return BarabasiAlbert(32, 2, rng);
}

// ---------------------------------------------------------------------------
// Candidate-set statistics
// ---------------------------------------------------------------------------

TEST(CandidateStatsTest, HandComputedPartition) {
  // Cells {0,1,2}, {3}, {4,5} over 6 vertices.
  const VertexPartition partition =
      VertexPartition::FromRepresentatives({0, 0, 0, 3, 4, 4});
  const CandidateStats stats = ComputeCandidateStats(partition, 2);
  EXPECT_EQ(stats.cells, 3u);
  EXPECT_EQ(stats.min_size, 1u);
  EXPECT_EQ(stats.max_size, 3u);
  // Mean |C(v)| over vertices: (3*3 + 1*1 + 2*2) / 6.
  EXPECT_DOUBLE_EQ(stats.mean_size, 14.0 / 6.0);
  // Mean 1/|C(v)| = cells/n.
  EXPECT_DOUBLE_EQ(stats.success_rate, 3.0 / 6.0);
  EXPECT_EQ(stats.under_k_vertices, 1u);  // Only the singleton {3}.
  EXPECT_EQ(ComputeCandidateStats(partition, 3).under_k_vertices, 3u);
}

// ---------------------------------------------------------------------------
// (k,l)-adjacency measure
// ---------------------------------------------------------------------------

TEST(AdjacencyMeasureTest, PathKeysAreKnown) {
  // P4: degrees 1,2,2,1. Every vertex's top neighbour degree is 2, so l=1
  // cannot separate anyone; l=2 splits the endpoints (key "2") from the
  // middle (key "2,1").
  const Graph path = MakePath(4);
  const VertexPartition l1 = PartitionByMeasure(path, AdjacencyMeasure(1));
  EXPECT_EQ(l1.NumCells(), 1u);
  const VertexPartition l2 = PartitionByMeasure(path, AdjacencyMeasure(2));
  ASSERT_EQ(l2.NumCells(), 2u);
  EXPECT_EQ(l2.cells[0], (std::vector<VertexId>{0, 3}));
  EXPECT_EQ(l2.cells[1], (std::vector<VertexId>{1, 2}));
}

TEST(AdjacencyMeasureTest, EllZeroIsTheTrivialPartition) {
  const Graph star = MakeStar(5);
  EXPECT_EQ(PartitionByMeasure(star, AdjacencyMeasure(0)).NumCells(), 1u);
}

TEST(AdjacencyMeasureTest, SweepIsMonotoneRefinement) {
  // key_{l+1} extends key_l, so each (l+1)-cell must sit inside one l-cell:
  // the sweep's candidate-set curve can only tighten.
  Rng rng(13);
  const Graph graph = BarabasiAlbert(40, 3, rng);
  VertexPartition prev = PartitionByMeasure(graph, AdjacencyMeasure(1));
  for (uint32_t ell = 2; ell <= 4; ++ell) {
    const VertexPartition next =
        PartitionByMeasure(graph, AdjacencyMeasure(ell));
    EXPECT_GE(next.NumCells(), prev.NumCells()) << "l=" << ell;
    for (const auto& cell : next.cells) {
      for (const VertexId v : cell) {
        EXPECT_EQ(prev.cell_of[v], prev.cell_of[cell[0]]) << "l=" << ell;
      }
    }
    prev = next;
  }
}

// ---------------------------------------------------------------------------
// Community measure
// ---------------------------------------------------------------------------

TEST(CommunityMeasureTest, LabelsAreEquivariant) {
  // Two disjoint copies of the same graph: v and its mirror v+n are swapped
  // by an automorphism, so equivariant labels must agree. (Seeding from
  // vertex ids instead of degrees would fail exactly here.)
  Rng rng(29);
  const Graph half = BarabasiAlbert(20, 2, rng);
  const Graph doubled = DisjointUnion(half, half);
  const size_t n = half.NumVertices();
  const std::vector<uint32_t> labels = CommunityLabels(doubled, 4);
  ASSERT_EQ(labels.size(), 2 * n);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(labels[v], labels[v + n]) << "vertex " << v;
  }
}

TEST(CommunityMeasureTest, StarCollapsesToTwoSignatures) {
  // All leaves of a star are symmetric: one signature for the hub, one for
  // the leaves, at every iteration count.
  const Graph star = MakeStar(7);
  for (const uint32_t iters : {0u, 1u, 4u}) {
    const VertexPartition cells =
        PartitionByMeasure(star, CommunityMeasure(iters));
    ASSERT_EQ(cells.NumCells(), 2u) << "iters=" << iters;
    EXPECT_EQ(cells.CellSizeOf(0), 1u) << "iters=" << iters;  // Hub.
    EXPECT_EQ(cells.CellSizeOf(1), star.NumVertices() - 1) << "iters=" << iters;
  }
}

TEST(CommunityMeasureTest, MeasureIsCoarserThanOrbits) {
  Rng rng(31);
  const Graph graph = ErdosRenyiGnm(30, 45, rng);
  const VertexPartition orbits =
      ComputeAutomorphismPartition(graph, {}, nullptr);
  const VertexPartition cells =
      PartitionByMeasure(graph, CommunityMeasure(4));
  // Orbit-mates are never separated by an equivariant measure.
  for (const auto& orbit : orbits.cells) {
    for (const VertexId v : orbit) {
      EXPECT_EQ(cells.cell_of[v], cells.cell_of[orbit[0]]);
    }
  }
}

// ---------------------------------------------------------------------------
// Sybil planting and recovery
// ---------------------------------------------------------------------------

TEST(SybilPlantTest, PlanStructureIsCoherent) {
  const Graph graph = MakePath(10);
  SybilPlantOptions options;
  options.num_sybils = 5;
  options.num_targets = 4;
  options.seed = 3;
  const auto plant = PlantSybils(graph, options);
  ASSERT_TRUE(plant.ok()) << plant.status().ToString();
  const SybilPlan& plan = plant->plan;

  // Sybils are appended after the original ids.
  ASSERT_EQ(plan.sybils.size(), 5u);
  for (size_t i = 0; i < plan.sybils.size(); ++i) {
    EXPECT_EQ(plan.sybils[i], graph.NumVertices() + i);
  }

  // The pattern's path spine is wired into the augmented graph, and the
  // pattern is exactly the induced subgraph on the sybils.
  ASSERT_EQ(plan.pattern.NumVertices(), 5u);
  for (size_t i = 0; i + 1 < plan.sybils.size(); ++i) {
    EXPECT_TRUE(plan.pattern.HasEdge(i, i + 1));
  }
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) {
      EXPECT_EQ(plan.pattern.HasEdge(a, b),
                plant->graph.HasEdge(plan.sybils[a], plan.sybils[b]));
    }
  }

  // Fingerprints: unique, non-empty, within the 5-bit mask range; targets
  // are distinct original vertices wired to exactly their mask.
  ASSERT_EQ(plan.targets.size(), 4u);
  ASSERT_EQ(plan.fingerprints.size(), 4u);
  std::vector<uint32_t> masks(plan.fingerprints);
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(std::unique(masks.begin(), masks.end()), masks.end());
  for (size_t t = 0; t < plan.targets.size(); ++t) {
    EXPECT_LT(plan.targets[t], graph.NumVertices());
    ASSERT_GT(plan.fingerprints[t], 0u);
    ASSERT_LT(plan.fingerprints[t], 1u << 5);
    for (size_t s = 0; s < plan.sybils.size(); ++s) {
      const bool wired =
          plant->graph.HasEdge(plan.targets[t], plan.sybils[s]);
      EXPECT_EQ(wired, (plan.fingerprints[t] >> s & 1) != 0);
    }
  }

  // The augmented graph is a supergraph of the original, and the recorded
  // planted degrees match it.
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const VertexId u : graph.Neighbors(v)) {
      EXPECT_TRUE(plant->graph.HasEdge(v, u));
    }
  }
  ASSERT_EQ(plan.planted_degrees.size(), 5u);
  for (size_t s = 0; s < plan.sybils.size(); ++s) {
    EXPECT_EQ(plan.planted_degrees[s], plant->graph.Degree(plan.sybils[s]));
  }
}

TEST(SybilPlantTest, RejectsOutOfRangeOptions) {
  const Graph graph = MakePath(4);
  SybilPlantOptions options;
  options.num_sybils = 0;
  EXPECT_FALSE(PlantSybils(graph, options).ok());
  options.num_sybils = 31;  // Fingerprints are 30-bit masks.
  EXPECT_FALSE(PlantSybils(graph, options).ok());
  options.num_sybils = 2;
  options.num_targets = 4;  // > 2^2 - 1 distinct fingerprints.
  EXPECT_FALSE(PlantSybils(graph, options).ok());
  options.num_sybils = 4;
  options.num_targets = 5;  // > |V|.
  EXPECT_FALSE(PlantSybils(graph, options).ok());
}

TEST(SybilRecoveryTest, NaiveReleaseIsFullyBroken) {
  // The golden parameters: on BA(32,2) seed 5, a 6-sybil pattern embeds
  // uniquely, so attacking the un-anonymized release pins all 3 targets.
  SybilPlantOptions options;
  options.num_sybils = 6;
  options.num_targets = 3;
  options.seed = 7;
  const auto plant = PlantSybils(GoldenHostGraph(), options);
  ASSERT_TRUE(plant.ok());

  const SybilAttackReport report = RecoverSybils(plant->graph, plant->plan);
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.embeddings_found, 1u);
  EXPECT_TRUE(report.found_planted_embedding);
  ASSERT_EQ(report.candidate_sets.size(), 3u);
  for (size_t t = 0; t < report.candidate_sets.size(); ++t) {
    EXPECT_EQ(report.candidate_sets[t],
              std::vector<VertexId>{plant->plan.targets[t]});
  }
  EXPECT_DOUBLE_EQ(report.success_probability, 1.0);
  EXPECT_EQ(report.unique_reidentifications, 3u);
}

TEST(SybilRecoveryTest, AnonymizedReleaseRestoresTheFloor) {
  SybilPlantOptions options;
  options.num_sybils = 6;
  options.num_targets = 3;
  options.seed = 7;
  const auto plant = PlantSybils(GoldenHostGraph(), options);
  ASSERT_TRUE(plant.ok());
  AnonymizationOptions anon;
  anon.k = 3;
  const auto release = Anonymize(plant->graph, anon);
  ASSERT_TRUE(release.ok());

  const SybilAttackReport report =
      RecoverSybils(release->graph, plant->plan);
  EXPECT_TRUE(report.found_planted_embedding);
  EXPECT_EQ(report.unique_reidentifications, 0u);
  EXPECT_LE(report.success_probability, 1.0 / 3.0);
  for (const auto& candidates : report.candidate_sets) {
    EXPECT_GE(candidates.size(), 3u);
  }
}

TEST(SybilRecoveryTest, PerAnchorBudgetReportsTruncation) {
  // A budget too small to even place the planted embedding must be reported
  // as truncation, never as a silently smaller candidate set.
  SybilPlantOptions options;
  options.num_sybils = 6;
  options.num_targets = 3;
  options.seed = 7;
  const auto plant = PlantSybils(GoldenHostGraph(), options);
  ASSERT_TRUE(plant.ok());
  SybilRecoveryOptions recovery;
  recovery.max_nodes_per_anchor = 1;
  const SybilAttackReport report =
      RecoverSybils(plant->graph, plant->plan, recovery);
  EXPECT_TRUE(report.truncated);
}

// ---------------------------------------------------------------------------
// Thread-count invariance: every report surface byte-identical at 1/2/4
// threads (the TSan job runs this file too).
// ---------------------------------------------------------------------------

TEST(AttackDeterminismTest, ReportsAreBitIdenticalAcrossThreadCounts) {
  SybilPlantOptions options;
  options.num_sybils = 6;
  options.num_targets = 3;
  options.seed = 7;
  const auto plant = PlantSybils(GoldenHostGraph(), options);
  ASSERT_TRUE(plant.ok());
  AnonymizationOptions anon;
  anon.k = 3;
  const auto release = Anonymize(plant->graph, anon);
  ASSERT_TRUE(release.ok());
  const VertexPartition orbits =
      ComputeAutomorphismPartition(release->graph, {}, nullptr);

  std::vector<std::string> sybil_sections;
  std::vector<std::string> passive_sections;
  for (const uint32_t threads : {1u, 2u, 4u}) {
    ExecutionContext context(threads);
    SybilRecoveryOptions recovery;
    recovery.context = &context;
    const SybilAttackReport report =
        RecoverSybils(release->graph, plant->plan, recovery);
    sybil_sections.push_back(
        FormatSybilSection("anonymized release", plant->plan, report));

    AttackHarnessOptions harness;
    harness.k = 3;
    harness.context = &context;
    passive_sections.push_back(FormatPassiveSection(
        EvaluatePassiveAttacks(release->graph, orbits, harness), 3));
  }
  EXPECT_EQ(sybil_sections[0], sybil_sections[1]);
  EXPECT_EQ(sybil_sections[0], sybil_sections[2]);
  EXPECT_EQ(passive_sections[0], passive_sections[1]);
  EXPECT_EQ(passive_sections[0], passive_sections[2]);
  // And the sections are non-trivial.
  EXPECT_NE(sybil_sections[0].find("sybil attack"), std::string::npos);
  EXPECT_NE(passive_sections[0].find("adjacency-l1"), std::string::npos);
  EXPECT_NE(passive_sections[0].find("community-t4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The pinned golden report
// ---------------------------------------------------------------------------

TEST(AttackGoldenTest, ReportMatchesCheckedInBytes) {
  // End to end through serve/api.h on the checked-in graph: any change to
  // planting, anonymization, recovery or formatting shows up as a byte
  // diff here (and in the CI smoke, which cmp's the CLI's stdout).
  serve::AttackRequest request;
  request.input = std::string(KSYM_TESTDATA_DIR) + "/attack_golden.ksymcsr";
  request.k = 3;
  request.seed = 7;
  request.sybils = 6;
  const auto response = serve::RunAttack(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const std::string golden =
      ReadFileBytes(std::string(KSYM_TESTDATA_DIR) + "/attack_golden.report");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(response->report, golden);
}

TEST(AttackGoldenTest, ThreadedRequestMatchesGoldenToo) {
  serve::AttackRequest request;
  request.input = std::string(KSYM_TESTDATA_DIR) + "/attack_golden.ksymcsr";
  request.k = 3;
  request.seed = 7;
  request.sybils = 6;
  request.threads = 4;
  const auto response = serve::RunAttack(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->report, ReadFileBytes(std::string(KSYM_TESTDATA_DIR) +
                                            "/attack_golden.report"));
}

// ---------------------------------------------------------------------------
// Manifest inputs fail descriptively
// ---------------------------------------------------------------------------

TEST(ManifestErrorTest, AnonymizeWithoutTdvNamesTheMissingFlag) {
  const std::string path = TempPath("attack_harness_manifest_a.manifest");
  WriteFileBytes(path, "KSYMSHARDS fake manifest body\n");
  serve::AnonymizeRequest request;
  request.input = path;
  request.output = TempPath("attack_harness_manifest_a.out");
  request.k = 3;
  const auto response = serve::RunAnonymize(request);
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().ToString().find("requires --tdv"),
            std::string::npos)
      << response.status().ToString();
  // Consistent with the attack op: both errors name the resident-graph
  // limitation and the --tdv workaround.
  EXPECT_NE(response.status().ToString().find("resident graph"),
            std::string::npos)
      << response.status().ToString();
}

TEST(ManifestErrorTest, AttackRefusesManifestsWithGuidance) {
  const std::string path = TempPath("attack_harness_manifest_b.manifest");
  WriteFileBytes(path, "KSYMSHARDS fake manifest body\n");
  serve::AttackRequest request;
  request.input = path;
  const auto response = serve::RunAttack(request);
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().ToString().find(
                "sharded manifests are not supported"),
            std::string::npos)
      << response.status().ToString();
  EXPECT_NE(response.status().ToString().find("resident graph"),
            std::string::npos)
      << response.status().ToString();
  EXPECT_NE(response.status().ToString().find("--tdv"), std::string::npos)
      << response.status().ToString();
}

}  // namespace
}  // namespace ksym
