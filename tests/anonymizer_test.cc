// Tests for the anonymization procedure (Algorithm 1, Theorem 2) and the
// f-symmetry / hub-exclusion generalization (Section 5.2).

#include "ksym/anonymizer.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ksym/verifier.h"

namespace ksym {
namespace {

Graph Figure3Graph() {
  GraphBuilder b(8);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 6);
  b.AddEdge(5, 7);
  b.AddEdge(6, 7);
  b.AddEdge(3, 4);
  return b.Build();
}

TEST(AnonymizerTest, KMustBePositive) {
  AnonymizationOptions options;
  options.k = 0;
  EXPECT_FALSE(Anonymize(MakePath(3), options).ok());
}

TEST(AnonymizerTest, KOneIsIdentity) {
  AnonymizationOptions options;
  options.k = 1;
  const auto result = Anonymize(Figure3Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->graph == Figure3Graph());
  EXPECT_EQ(result->vertices_added, 0u);
  EXPECT_EQ(result->edges_added, 0u);
}

TEST(AnonymizerTest, Figure5aTwoSymmetric) {
  // Example 5, k = 2: only the singleton orbits {v3} and {v8} are copied:
  // +2 vertices.
  AnonymizationOptions options;
  options.k = 2;
  const auto result = Anonymize(Figure3Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.NumVertices(), 10u);
  EXPECT_EQ(result->vertices_added, 2u);
  EXPECT_EQ(result->orbits_copied, 2u);
  EXPECT_EQ(result->orbits_satisfied, 3u);
  EXPECT_TRUE(IsKSymmetric(result->graph, 2));
  EXPECT_TRUE(IsSupergraphOf(result->graph, Figure3Graph()));
}

TEST(AnonymizerTest, Figure5bThreeSymmetric) {
  // Example 5, k = 3: none of the 5 orbits satisfies the constraint, so
  // all are copied. The three size-2 orbits get one copy each (+2 each);
  // the two singletons get two copies each (+2 each): 10 new vertices.
  AnonymizationOptions options;
  options.k = 3;
  const auto result = Anonymize(Figure3Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->orbits_copied, 5u);
  EXPECT_EQ(result->vertices_added, 10u);
  EXPECT_TRUE(IsKSymmetric(result->graph, 3));
  EXPECT_TRUE(IsSupergraphOf(result->graph, Figure3Graph()));
}

TEST(AnonymizerTest, ReleasedPartitionIsSubAutomorphism) {
  // Theorem 1: the released partition is a sub-automorphism partition.
  AnonymizationOptions options;
  options.k = 3;
  const auto result = Anonymize(Figure3Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(
      IsCellwiseSubAutomorphismPartition(result->graph, result->partition));
  for (const auto& cell : result->partition.cells) {
    EXPECT_GE(cell.size(), 3u);
  }
}

TEST(AnonymizerTest, RandomGraphsBecomeKSymmetric) {
  Rng rng(53);
  for (uint32_t k : {2u, 3u, 5u}) {
    const Graph g = ErdosRenyiGnm(24, 40, rng);
    AnonymizationOptions options;
    options.k = k;
    const auto result = Anonymize(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(IsKSymmetric(result->graph, k)) << "k=" << k;
    EXPECT_TRUE(IsSupergraphOf(result->graph, g));
    EXPECT_EQ(result->graph.NumVertices(),
              g.NumVertices() + result->vertices_added);
  }
}

TEST(AnonymizerTest, VertexBoundFromComplexityAnalysis) {
  // Section 3.3: at most (k-1) |V(G)| vertices are added.
  Rng rng(59);
  const Graph g = ErdosRenyiGnm(30, 45, rng);
  for (uint32_t k : {2u, 4u, 6u}) {
    AnonymizationOptions options;
    options.k = k;
    const auto result = Anonymize(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->vertices_added, (k - 1) * g.NumVertices());
  }
}

TEST(AnonymizerTest, AlreadySymmetricGraphUntouched) {
  // C_8 is vertex-transitive: one orbit of size 8 satisfies any k <= 8.
  AnonymizationOptions options;
  options.k = 5;
  const auto result = Anonymize(MakeCycle(8), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices_added, 0u);
  EXPECT_EQ(result->orbits_satisfied, 1u);
}

TEST(AnonymizerTest, HubExclusionSkipsHighDegreeOrbits) {
  const Graph star = MakeStar(10);  // Hub degree 9, leaves degree 1.
  AnonymizationOptions options;
  options.k = 3;
  options.requirement = HubExclusionRequirement(3, /*degree_threshold=*/5);
  const auto result = Anonymize(star, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->orbits_excluded, 1u);   // The hub.
  EXPECT_EQ(result->orbits_satisfied, 1u);  // 9 leaves >= 3 already.
  EXPECT_EQ(result->vertices_added, 0u);
}

TEST(AnonymizerTest, HubExclusionReducesCost) {
  // A star with an asymmetric pendant chain: the hub is expensive to copy.
  GraphBuilder b(12);
  for (VertexId leaf = 1; leaf <= 9; ++leaf) b.AddEdge(0, leaf);
  b.AddEdge(9, 10);
  b.AddEdge(10, 11);
  const Graph g = b.Build();

  AnonymizationOptions full;
  full.k = 4;
  const auto with_hub = Anonymize(g, full);
  ASSERT_TRUE(with_hub.ok());

  AnonymizationOptions excluded;
  excluded.k = 4;
  excluded.requirement = HubExclusionRequirement(4, /*degree_threshold=*/5);
  const auto without_hub = Anonymize(g, excluded);
  ASSERT_TRUE(without_hub.ok());

  EXPECT_LT(without_hub->edges_added, with_hub->edges_added);
  EXPECT_LT(without_hub->vertices_added, with_hub->vertices_added);
}

TEST(AnonymizerTest, DegreeThresholdForFraction) {
  const Graph star = MakeStar(100);  // One vertex of degree 99.
  // Excluding the top 1% excludes exactly the hub.
  const size_t threshold = DegreeThresholdForExcludedFraction(star, 0.01);
  EXPECT_LT(threshold, 99u);
  EXPECT_GE(threshold, 1u);
  // Fraction 0 excludes nothing.
  EXPECT_EQ(DegreeThresholdForExcludedFraction(star, 0.0),
            std::numeric_limits<size_t>::max());
}

TEST(AnonymizerTest, TdvPartitionOptionWorksOnTrees) {
  // On trees TDV = Orb, so the TDV-based anonymization is exact.
  const Graph tree = MakeBalancedTree(2, 3);
  AnonymizationOptions options;
  options.k = 2;
  options.use_total_degree_partition = true;
  const auto result = Anonymize(tree, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKSymmetric(result->graph, 2));
}

TEST(AnonymizerTest, TdvPitfallOnRegularRigidGraph) {
  // Section 7's approximation is only sound when TDV(G) = Orb(G). The
  // Frucht graph (3-regular, rigid) is the canonical counterexample: TDV is
  // the unit partition (size 12 >= k, so the anonymizer does nothing) but
  // every orbit is a singleton — the output is NOT k-symmetric. This test
  // documents the caveat; bench_ablation_tdv is the check a publisher
  // should run before trusting use_total_degree_partition.
  GraphBuilder b(12);
  for (int i = 0; i < 12; ++i) b.AddEdge(i, (i + 1) % 12);
  const std::pair<int, int> chords[] = {{0, 7}, {1, 11}, {2, 10},
                                        {3, 5}, {4, 9},  {6, 8}};
  for (const auto& [u, v] : chords) b.AddEdge(u, v);
  const Graph frucht = b.Build();

  AnonymizationOptions options;
  options.k = 2;
  options.use_total_degree_partition = true;
  const auto release = Anonymize(frucht, options);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->vertices_added, 0u);          // TDV saw one big cell.
  EXPECT_FALSE(IsKSymmetric(release->graph, 2));   // But the graph is rigid.

  // The exact partition does the right thing.
  options.use_total_degree_partition = false;
  const auto exact = Anonymize(frucht, options);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(IsKSymmetric(exact->graph, 2));
}

TEST(AnonymizerTest, GeneralFSymmetryRequirement) {
  // Per-orbit requirement: degree-1 orbits need 4 copies, others 2.
  const Graph g = Figure3Graph();
  AnonymizationOptions options;
  options.requirement = [](const std::vector<VertexId>&, size_t degree) {
    return degree == 1 ? 4u : 2u;
  };
  const auto result = Anonymize(g, options);
  ASSERT_TRUE(result.ok());
  for (const auto& cell : result->partition.cells) {
    const size_t degree = result->graph.Degree(cell.front());
    EXPECT_GE(cell.size(), degree == 1 ? 4u : 2u);
  }
}

}  // namespace
}  // namespace ksym
