// Tests for graph backbone detection (Algorithm 2, Theorems 3-4).

#include "ksym/backbone.h"

#include <gtest/gtest.h>

#include "aut/isomorphism.h"
#include "graph/generators.h"
#include "ksym/anonymizer.h"

namespace ksym {
namespace {

Graph Figure3Graph() {
  GraphBuilder b(8);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 6);
  b.AddEdge(5, 7);
  b.AddEdge(6, 7);
  b.AddEdge(3, 4);
  return b.Build();
}

TEST(BackboneTest, StarCollapsesToSingleEdge) {
  // All leaves are mutual orbit-copies: the backbone of a star under
  // Orb(G) is one hub plus one leaf.
  const Graph star = MakeStar(8);
  const VertexPartition orbits = ComputeAutomorphismPartition(star, {}, nullptr);
  const BackboneResult backbone = ComputeBackbone(star, orbits, nullptr);
  EXPECT_EQ(backbone.graph.NumVertices(), 2u);
  EXPECT_EQ(backbone.graph.NumEdges(), 1u);
  EXPECT_EQ(backbone.removed_vertices, 6u);
}

TEST(BackboneTest, RigidGraphIsItsOwnBackbone) {
  // A path has orbits {ends}, {next-to-ends}, ...; the two ends are NOT
  // L(V)-copies (different external neighbours), so nothing reduces.
  const Graph p5 = MakePath(5);
  const VertexPartition orbits = ComputeAutomorphismPartition(p5, {}, nullptr);
  const BackboneResult backbone = ComputeBackbone(p5, orbits, nullptr);
  EXPECT_EQ(backbone.graph.NumVertices(), 5u);
  EXPECT_EQ(backbone.removed_vertices, 0u);
}

TEST(BackboneTest, Figure7aComponentsWithSharedNeighborsReduce) {
  // Figure 7(a)-style: two single-vertex components in one cell sharing the
  // same external neighbour are copies; one is removed.
  GraphBuilder b(5);
  b.AddEdge(0, 2);  // Cell {0, 1} hangs off vertex 2.
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);  // Tail of length 2 keeps 3 out of the pendant orbit.
  b.AddEdge(3, 4);
  const Graph g = b.Build();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  const BackboneResult backbone = ComputeBackbone(g, orbits, nullptr);
  EXPECT_EQ(backbone.removed_vertices, 1u);
  EXPECT_EQ(backbone.graph.NumVertices(), 4u);  // The path 0-2-3-4.
}

TEST(BackboneTest, Figure7bComponentsWithDisjointNeighborsDoNot) {
  // Figure 7(b)-style: two pendant vertices in one orbit but attached to
  // *different* (symmetric) hubs are not L(V)-copies; nothing reduces in
  // their cell — and consequently nothing anywhere.
  GraphBuilder b(4);
  b.AddEdge(0, 1);  // 0 pendant on 1.
  b.AddEdge(2, 3);  // 2 pendant on 3 (wait: make middle edge)
  b.AddEdge(1, 3);  // Connect the two hubs: path 0-1-3-2.
  const Graph g = b.Build();
  // Orbits: {0, 2} (pendants), {1, 3}.
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  ASSERT_EQ(orbits.NumCells(), 2u);
  const BackboneResult backbone = ComputeBackbone(g, orbits, nullptr);
  EXPECT_EQ(backbone.removed_vertices, 0u);
}

TEST(BackboneTest, AnonymizedGraphReducesToOriginalBackbone) {
  // Theorem 4: orbit copying preserves the backbone. B(G') == B(G).
  const Graph g = Figure3Graph();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  const BackboneResult original_backbone = ComputeBackbone(g, orbits, nullptr);

  for (uint32_t k : {2u, 3u, 5u}) {
    AnonymizationOptions options;
    options.k = k;
    const auto anonymized = Anonymize(g, options);
    ASSERT_TRUE(anonymized.ok());
    const BackboneResult backbone =
        ComputeBackbone(anonymized->graph, anonymized->partition, nullptr);
    EXPECT_TRUE(AreIsomorphic(backbone.graph, original_backbone.graph))
        << "k=" << k;
  }
}

TEST(BackboneTest, PartitionRestrictedConsistently) {
  const Graph star = MakeStar(6);
  const VertexPartition orbits = ComputeAutomorphismPartition(star, {}, nullptr);
  const BackboneResult backbone = ComputeBackbone(star, orbits, nullptr);
  EXPECT_EQ(backbone.partition.cells.size(), 2u);
  EXPECT_EQ(backbone.kept.size(), backbone.graph.NumVertices());
  // kept maps backbone ids to original ids; cell structure matches.
  for (size_t i = 0; i < backbone.kept.size(); ++i) {
    const uint32_t original_cell = orbits.cell_of[backbone.kept[i]];
    for (size_t j = 0; j < backbone.kept.size(); ++j) {
      if (backbone.partition.cell_of[i] == backbone.partition.cell_of[j]) {
        EXPECT_EQ(orbits.cell_of[backbone.kept[j]], original_cell);
      }
    }
  }
}

TEST(BackboneTest, MultiOrbitSubstructuresDoNotReduce) {
  // Figure 6's S1/S2 distinction between backbone and quotient: an
  // automorphic substructure spanning *several* orbits cannot be removed by
  // the single-orbit reduction operation. Hub 0 with two pendant leaves
  // (1, 2) and two pendant length-2 arms (3-4, 5-6): the leaves are
  // single-orbit copies (reduce), but each arm spans the two orbits
  // {3,5} and {4,6}, and within each of those cells the members have
  // different external neighbours — the arms stay.
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(3, 4);
  b.AddEdge(0, 5);
  b.AddEdge(5, 6);
  const Graph g = b.Build();
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  const BackboneResult backbone = ComputeBackbone(g, orbits, nullptr);
  EXPECT_EQ(backbone.removed_vertices, 1u);     // One of the two leaves.
  EXPECT_EQ(backbone.graph.NumVertices(), 6u);  // Both arms preserved.
}

TEST(BackboneTest, EmptyAndTrivialInputs) {
  const Graph empty(0);
  const BackboneResult backbone =
      ComputeBackbone(empty, VertexPartition::FromCells(0, {}), nullptr);
  EXPECT_EQ(backbone.graph.NumVertices(), 0u);

  const Graph isolated(3);
  const VertexPartition orbits = ComputeAutomorphismPartition(isolated, {}, nullptr);
  const BackboneResult b2 = ComputeBackbone(isolated, orbits, nullptr);
  EXPECT_EQ(b2.graph.NumVertices(), 1u);  // Three copies of one vertex.
}

}  // namespace
}  // namespace ksym
