// Failure-injection tests: every Status-returning API surface exercised
// with invalid inputs; errors must be reported, not crash or corrupt.

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/kdegree.h"
#include "baseline/perturbation.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "ksym/anonymizer.h"
#include "ksym/minimal.h"
#include "ksym/sampling.h"

namespace ksym {
namespace {

TEST(ErrorsTest, AnonymizerRejectsZeroK) {
  AnonymizationOptions options;
  options.k = 0;
  const auto result = Anonymize(MakeCycle(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorsTest, AnonymizerRejectsMismatchedPartition) {
  const Graph g = MakeCycle(5);
  const VertexPartition wrong = VertexPartition::FromCells(3, {{0, 1, 2}});
  AnonymizationOptions options;
  options.k = 2;
  EXPECT_FALSE(AnonymizeWithPartition(g, wrong, options).ok());
  EXPECT_FALSE(AnonymizeMinimalVertices(g, wrong, options).ok());
}

TEST(ErrorsTest, SamplersRejectMismatchedInputs) {
  const Graph g = MakeCycle(5);
  const VertexPartition wrong = VertexPartition::FromCells(3, {{0, 1, 2}});
  Rng rng(1);
  EXPECT_FALSE(ExactBackboneSample(g, wrong, 5, rng).ok());
  EXPECT_FALSE(ApproximateBackboneSample(g, wrong, 5, rng).ok());

  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  const std::vector<double> bad_weights(99, 1.0);
  EXPECT_FALSE(ExactBackboneSample(g, orbits, 5, rng, &bad_weights).ok());
  EXPECT_FALSE(
      ApproximateBackboneSample(g, orbits, 5, rng, &bad_weights).ok());
}

TEST(ErrorsTest, SamplerHandlesZeroTarget) {
  const Graph g = MakeCycle(5);
  const VertexPartition orbits = ComputeAutomorphismPartition(g, {}, nullptr);
  Rng rng(2);
  const auto sample = ApproximateBackboneSample(g, orbits, 0, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumVertices(), 0u);
}

TEST(ErrorsTest, SamplerHandlesEmptyGraph) {
  Rng rng(3);
  const auto sample = ApproximateBackboneSample(
      Graph(0), VertexPartition::FromCells(0, {}), 0, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumVertices(), 0u);
}

TEST(ErrorsTest, PerturbationRejectsOutOfRangeFraction) {
  Rng rng(4);
  EXPECT_EQ(RandomEdgePerturbation(MakeCycle(5), -0.01, rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RandomEdgePerturbation(MakeCycle(5), 1.01, rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ErrorsTest, KDegreeRejectsUndersizedGraph) {
  Rng rng(5);
  const auto result = KDegreeAnonymize(MakePath(2), 3, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorsTest, EdgeListParserReportsLineNumbers) {
  std::istringstream in("0 1\n1 2\nbogus line here\n");
  const auto loaded = ReadEdgeList(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
}

TEST(ErrorsTest, ConfigurationModelStatusCodes) {
  Rng rng(6);
  EXPECT_EQ(ConfigurationModel({1, 1, 1}, rng).status().code(),
            StatusCode::kInvalidArgument);  // Odd sum.
  EXPECT_EQ(ConfigurationModel({9, 1}, rng).status().code(),
            StatusCode::kInvalidArgument);  // Degree >= n.
}

TEST(ErrorsTest, StatusPropagationMacro) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    KSYM_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  const Status s = outer();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "inner");
}

TEST(ErrorsTest, ResultValueOr) {
  const Result<int> good(42);
  EXPECT_EQ(good.value_or(-1), 42);
  const Result<int> bad(Status::NotFound("missing"));
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ErrorsTest, ResultValueOrMovesFromRvalue) {
  Result<std::vector<int>> good(std::vector<int>{1, 2, 3});
  const std::vector<int> taken = std::move(good).value_or(std::vector<int>{});
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(good.value().empty());  // Moved-from, not copied.

  Result<std::vector<int>> bad(Status::Internal("boom"));
  EXPECT_EQ(std::move(bad).value_or(std::vector<int>{9}),
            std::vector<int>{9});
}

TEST(ErrorsTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::Infeasible("nope"); };
  auto outer = [&]() -> Status {
    KSYM_ASSIGN_OR_RETURN(int x, fails());
    (void)x;
    return Status::Internal("unreachable");
  };
  const Status s = outer();
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "nope");
}

TEST(ErrorsTest, AssignOrReturnDeclaresAndAssigns) {
  auto make = [](int v) -> Result<int> { return v; };
  auto outer = [&]() -> Result<int> {
    KSYM_ASSIGN_OR_RETURN(int x, make(20));
    KSYM_ASSIGN_OR_RETURN(x, make(x + 2));  // Assign to existing variable.
    return x * 2;
  };
  const Result<int> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 44);
}

TEST(ErrorsTest, AssignOrReturnMovesTheValue) {
  auto make = []() -> Result<std::vector<int>> {
    return std::vector<int>(1000, 7);
  };
  auto outer = [&]() -> Result<size_t> {
    KSYM_ASSIGN_OR_RETURN(const std::vector<int> values, make());
    return values.size();
  };
  const Result<size_t> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1000u);
}

}  // namespace
}  // namespace ksym
