// Privacy audit: measure how exposed a network's individuals are to
// structural re-identification before any protection is applied.
//
// Loads an edge list (or generates the Enron-like demo network) and
// reports, for a ladder of adversary knowledge levels — degree, triangle
// count, neighbour degree sequence, combined — how many vertices each
// measure pins down uniquely, plus the theoretical exposure limit given by
// the automorphism partition.
//
//   ./privacy_audit [edge_list_file]

#include <cstdio>
#include <string>

#include "attack/measures.h"
#include "attack/reidentification.h"
#include "aut/orbits.h"
#include "datasets/datasets.h"
#include "graph/algorithms.h"
#include "graph/io.h"

int main(int argc, char** argv) {
  using namespace ksym;

  Graph graph;
  std::string source;
  if (argc > 1) {
    auto loaded = ReadEdgeListFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded->graph);
    source = argv[1];
  } else {
    graph = MakeEnronLike();
    source = "builtin Enron-like demo network";
  }

  const DegreeStats stats = ComputeDegreeStats(graph);
  std::printf("Auditing %s\n", source.c_str());
  std::printf("  %zu vertices, %zu edges, degree %zu..%zu (avg %.2f)\n\n",
              stats.num_vertices, stats.num_edges, stats.min_degree,
              stats.max_degree, stats.average_degree);

  const VertexPartition orbits = ComputeAutomorphismPartition(graph, {}, nullptr);
  std::printf("Theoretical exposure limit (automorphism partition):\n");
  std::printf("  %zu of %zu vertices (%.1f%%) are uniquely identifiable by\n"
              "  *some* structural knowledge; no knowledge can do better.\n\n",
              orbits.NumSingletons(), graph.NumVertices(),
              100.0 * static_cast<double>(orbits.NumSingletons()) /
                  static_cast<double>(graph.NumVertices()));

  std::printf("%-22s %10s %10s %8s %8s\n", "adversary knows", "unique",
              "at-risk<5", "r_f", "s_f");
  for (const StructuralMeasure& measure :
       {DegreeMeasure(), TriangleMeasure(), NeighborDegreeSequenceMeasure(),
        NeighborhoodMeasure(), CombinedMeasure()}) {
    const VertexPartition partition = PartitionByMeasure(graph, measure);
    size_t at_risk = 0;
    for (const auto& cell : partition.cells) {
      if (cell.size() < 5) at_risk += cell.size();
    }
    const ReidentificationStats r = CompareToOrbits(partition, orbits);
    std::printf("%-22s %10zu %10zu %8.3f %8.3f\n", measure.name.c_str(),
                r.measure_singletons, at_risk, r.r_f, r.s_f);
  }

  // Show the single most exposed high-degree vertex as a concrete case.
  VertexId hub = 0;
  for (VertexId v = 1; v < graph.NumVertices(); ++v) {
    if (graph.Degree(v) > graph.Degree(hub)) hub = v;
  }
  const auto candidates = CandidateSet(graph, CombinedMeasure(), hub);
  std::printf(
      "\nExample: the highest-degree vertex (id %u, degree %zu) has a\n"
      "combined-knowledge candidate set of size %zu%s\n",
      hub, graph.Degree(hub), candidates.size(),
      candidates.size() == 1 ? " - it is fully re-identifiable." : ".");

  std::printf(
      "\nA release that resists every row above at level k needs the\n"
      "k-symmetry model: see quickstart and publish_pipeline.\n");
  return 0;
}
