// Publish pipeline: the full publisher -> analyst workflow of the paper.
//
// Publisher side: anonymize a network to k-symmetry (optionally excluding
// the top hub fraction per Section 5.2) and emit the release triple
// (G', V', |V(G)|).
//
// Analyst side: draw sample graphs from the release with the approximate
// backbone-based sampler and estimate the original's statistics from the
// aggregate, reporting estimation error against the (publisher-only) truth.
//
//   ./publish_pipeline [k] [hub_exclude_fraction] [num_samples]
//   e.g. ./publish_pipeline 5 0.01 10

#include <cstdio>
#include <cstdlib>

#include "aut/orbits.h"
#include "datasets/datasets.h"
#include "graph/algorithms.h"
#include "ksym/anonymizer.h"
#include "ksym/sampling.h"
#include "stats/distributions.h"
#include "stats/ks.h"

int main(int argc, char** argv) {
  using namespace ksym;
  const uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 5;
  const double exclude = argc > 2 ? std::atof(argv[2]) : 0.0;
  const size_t num_samples = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 10;

  // ----------------------------------------------------------------- //
  // Publisher side.                                                    //
  // ----------------------------------------------------------------- //
  const Graph original = MakeHepthLike();
  std::printf("[publisher] original network: %zu vertices, %zu edges\n",
              original.NumVertices(), original.NumEdges());

  AnonymizationOptions options;
  options.k = k;
  if (exclude > 0.0) {
    options.requirement = HubExclusionRequirement(
        k, DegreeThresholdForExcludedFraction(original, exclude));
  }
  const auto release = Anonymize(original, options);
  if (!release.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 release.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "[publisher] released: %zu vertices (+%zu), %zu edges (+%zu), k=%u, "
      "hubs excluded: %.1f%%\n",
      release->graph.NumVertices(), release->vertices_added,
      release->graph.NumEdges(), release->edges_added, k, 100.0 * exclude);
  std::printf("[publisher] release triple = (G', V' with %zu cells, n=%zu)\n",
              release->partition.cells.size(), release->original_vertices);

  // ----------------------------------------------------------------- //
  // Analyst side: only (G', V', n) is used from here on.               //
  // ----------------------------------------------------------------- //
  const Graph& g_prime = release->graph;
  const VertexPartition& v_prime = release->partition;
  const size_t n = release->original_vertices;

  Rng rng(2024);
  std::vector<Graph> samples;
  for (size_t i = 0; i < num_samples; ++i) {
    auto sample = ApproximateBackboneSample(g_prime, v_prime, n, rng);
    if (!sample.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sample.status().ToString().c_str());
      return 1;
    }
    samples.push_back(std::move(sample).value());
  }
  std::printf("[analyst]   drew %zu sample graphs of ~%zu vertices\n",
              samples.size(), n);

  // Aggregate estimates across samples.
  double est_edges = 0;
  double est_avg_degree = 0;
  double est_max_degree = 0;
  double est_lcc = 0;
  double est_triangles = 0;
  for (const Graph& sample : samples) {
    const DegreeStats s = ComputeDegreeStats(sample);
    est_edges += static_cast<double>(s.num_edges);
    est_avg_degree += s.average_degree;
    est_max_degree += static_cast<double>(s.max_degree);
    est_lcc += static_cast<double>(LargestComponentSize(sample));
    est_triangles += static_cast<double>(TotalTriangles(sample));
  }
  const double m = static_cast<double>(samples.size());
  est_edges /= m;
  est_avg_degree /= m;
  est_max_degree /= m;
  est_lcc /= m;
  est_triangles /= m;

  const DegreeStats truth = ComputeDegreeStats(original);
  std::printf("\n%-18s %12s %12s %9s\n", "statistic", "estimate", "truth",
              "error");
  auto row = [](const char* name, double est, double truth_value) {
    const double err = truth_value == 0.0
                           ? 0.0
                           : 100.0 * (est - truth_value) / truth_value;
    std::printf("%-18s %12.1f %12.1f %8.1f%%\n", name, est, truth_value, err);
  };
  row("edges", est_edges, static_cast<double>(truth.num_edges));
  row("average degree", est_avg_degree, truth.average_degree);
  row("max degree", est_max_degree, static_cast<double>(truth.max_degree));
  row("largest component", est_lcc,
      static_cast<double>(LargestComponentSize(original)));
  row("triangles", est_triangles,
      static_cast<double>(TotalTriangles(original)));

  double ks = 0;
  for (const Graph& sample : samples) {
    ks += KolmogorovSmirnovStatistic(DegreeValues(original),
                                     DegreeValues(sample));
  }
  std::printf("\nMean degree-distribution K-S distance: %.3f\n", ks / m);
  return 0;
}
