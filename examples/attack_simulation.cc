// Attack simulation: an adversary with escalating background knowledge
// tries to re-identify specific targets in (a) a naively-anonymized release
// and (b) a k-symmetric release of the same network.
//
// For each target the adversary computes the candidate set — all vertices
// consistent with their knowledge — and succeeds when it is a singleton.
// Under k-symmetry every candidate set provably has >= k members.
//
//   ./attack_simulation [k] [num_targets]

#include <cstdio>
#include <cstdlib>

#include "attack/measures.h"
#include "baseline/naive.h"
#include "datasets/datasets.h"
#include "ksym/anonymizer.h"

int main(int argc, char** argv) {
  using namespace ksym;
  const uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 5;
  const size_t num_targets =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 8;

  const Graph original = MakeEnronLike();
  Rng rng(1234);

  // Naive release: identities replaced by random integers; the structure is
  // intact, so structural knowledge carries over verbatim.
  const NaiveAnonymization naive = NaiveAnonymize(original, rng);

  // k-symmetric release.
  AnonymizationOptions options;
  options.k = k;
  const auto protected_release = Anonymize(original, options);
  if (!protected_release.ok()) {
    std::fprintf(stderr, "anonymization failed\n");
    return 1;
  }

  const StructuralMeasure measures[] = {DegreeMeasure(), TriangleMeasure(),
                                        CombinedMeasure()};

  // Precompute the measure partitions of both releases.
  VertexPartition naive_parts[3];
  VertexPartition ksym_parts[3];
  for (int i = 0; i < 3; ++i) {
    naive_parts[i] = PartitionByMeasure(naive.graph, measures[i]);
    ksym_parts[i] = PartitionByMeasure(protected_release->graph, measures[i]);
  }

  std::printf("Network: %zu vertices; releases: naive vs %u-symmetric "
              "(+%zu vertices, +%zu edges)\n\n",
              original.NumVertices(), k, protected_release->vertices_added,
              protected_release->edges_added);
  std::printf("Candidate-set size per target (1 = re-identified):\n");
  std::printf("%-8s %-9s | %-24s | %-24s\n", "", "", "naive release",
              "k-symmetric release");
  std::printf("%-8s %-9s | %7s %7s %8s | %7s %7s %8s\n", "target", "degree",
              "deg", "tri", "combined", "deg", "tri", "combined");

  size_t naive_hits = 0;
  size_t ksym_hits = 0;
  for (size_t t = 0; t < num_targets; ++t) {
    // The adversary targets a random individual; in the naive release the
    // target's vertex is pseudonym[v], structurally identical to v.
    const VertexId v =
        static_cast<VertexId>(rng.NextBounded(original.NumVertices()));
    const VertexId naive_v = naive.pseudonym[v];
    size_t naive_sizes[3];
    size_t ksym_sizes[3];
    for (int i = 0; i < 3; ++i) {
      naive_sizes[i] = naive_parts[i].CellSizeOf(naive_v);
      // In the k-symmetric release original ids are preserved.
      ksym_sizes[i] = ksym_parts[i].CellSizeOf(v);
    }
    naive_hits += naive_sizes[2] == 1;
    ksym_hits += ksym_sizes[2] == 1;
    std::printf("v%-7u %-9zu | %7zu %7zu %8zu | %7zu %7zu %8zu\n", v,
                original.Degree(v), naive_sizes[0], naive_sizes[1],
                naive_sizes[2], ksym_sizes[0], ksym_sizes[1], ksym_sizes[2]);
  }

  std::printf(
      "\nCombined-knowledge re-identification: naive %zu/%zu targets, "
      "k-symmetric %zu/%zu targets.\n",
      naive_hits, num_targets, ksym_hits, num_targets);
  std::printf(
      "Every candidate set in the k-symmetric release has >= %u members —\n"
      "by Theorem 2 this holds for *any* structural knowledge, not just\n"
      "the measures simulated here.\n",
      k);
  return 0;
}
