// Quickstart: anonymize a small social network with the k-symmetry model.
//
// Reproduces the paper's running example (Figure 3 / Figure 5): builds the
// 8-vertex graph, inspects its automorphism partition, anonymizes at k = 2
// and k = 3, and verifies the result resists *any* structural
// re-identification at level k.
//
//   ./quickstart

#include <cstdio>

#include "aut/orbits.h"
#include "graph/graph.h"
#include "ksym/anonymizer.h"
#include "ksym/verifier.h"

int main() {
  using namespace ksym;

  // The paper's Figure 3(a) graph (1-indexed v1..v8 -> 0-indexed).
  GraphBuilder builder(8);
  builder.AddEdge(0, 2);  // v1-v3
  builder.AddEdge(1, 2);  // v2-v3
  builder.AddEdge(2, 3);  // v3-v4
  builder.AddEdge(2, 4);  // v3-v5
  builder.AddEdge(3, 4);  // v4-v5
  builder.AddEdge(3, 5);  // v4-v6
  builder.AddEdge(4, 6);  // v5-v7
  builder.AddEdge(5, 7);  // v6-v8
  builder.AddEdge(6, 7);  // v7-v8
  const Graph graph = builder.Build();
  std::printf("Original graph: %zu vertices, %zu edges\n",
              graph.NumVertices(), graph.NumEdges());

  // Step 1: the automorphism partition Orb(G). |Orb(v)| bounds the power of
  // every structural attack against v; singleton orbits are fully exposed.
  const VertexPartition orbits = ComputeAutomorphismPartition(graph, {}, nullptr);
  std::printf("\nAutomorphism partition (%zu orbits):\n", orbits.NumCells());
  for (const auto& orbit : orbits.cells) {
    std::printf("  {");
    for (size_t i = 0; i < orbit.size(); ++i) {
      std::printf("%sv%u", i ? ", " : "", orbit[i] + 1);
    }
    std::printf("}%s\n", orbit.size() == 1 ? "   <- uniquely identifiable" : "");
  }

  // Step 2: anonymize. Every orbit is copied until it has >= k members.
  for (uint32_t k : {2u, 3u}) {
    AnonymizationOptions options;
    options.k = k;
    const auto release = Anonymize(graph, options);
    if (!release.ok()) {
      std::printf("anonymization failed: %s\n",
                  release.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\nk = %u: released graph has %zu vertices (+%zu), %zu edges (+%zu), "
        "%zu copy operations\n",
        k, release->graph.NumVertices(), release->vertices_added,
        release->graph.NumEdges(), release->edges_added,
        release->copy_operations);

    // Step 3: verify from scratch — recompute the orbits of the release and
    // check every vertex has >= k structurally equivalent counterparts.
    std::printf("  minimum orbit size: %zu (k-symmetric: %s)\n",
                MinimumOrbitSize(release->graph),
                IsKSymmetric(release->graph, k) ? "yes" : "NO");
  }

  std::printf(
      "\nThe release triple (G', V', |V(G)|) is what a publisher shares;\n"
      "see publish_pipeline for the analyst's side of the workflow.\n");
  return 0;
}
