#!/usr/bin/env python3
"""CI check: every PR recorded in CHANGES.md ships its bench artifact.

Each "- PR N:" line in CHANGES.md is expected to have a matching
BENCH_prN.json checked into the repository root — the per-PR
google-benchmark JSON trace the perf history is reconstructed from. A PR
whose artifact is legitimately absent (no bench-worthy change, or the file
was lost before this check existed) must say so in its CHANGES.md line
with the literal marker "no bench artifact" or "bench artifact lost", so
the absence is a recorded decision instead of a silent drop.

Presence is the hard gate. Artifacts are additionally parsed, but a parse
failure only warns: some historical artifacts (BENCH_pr2.json) were
truncated by the interrupted runs that produced them, and rewriting
history is worse than recording the defect. An empty (0-byte) artifact
still fails — that is a fresh placeholder, not a legacy truncation.

Usage: check_bench_artifacts.py [REPO_ROOT]
"""

import json
import os
import re
import sys

MARKERS = ("no bench artifact", "bench artifact lost")


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    changes = os.path.join(root, "CHANGES.md")
    with open(changes, encoding="utf-8") as f:
        lines = f.read().splitlines()

    failures = []
    checked = 0
    for line in lines:
        match = re.match(r"-\s*PR\s+(\d+):", line)
        if not match:
            continue
        number = int(match.group(1))
        artifact = os.path.join(root, f"BENCH_pr{number}.json")
        lowered = line.lower()
        if any(marker in lowered for marker in MARKERS):
            if os.path.exists(artifact):
                failures.append(
                    f"PR {number}: CHANGES.md claims no artifact but "
                    f"BENCH_pr{number}.json exists"
                )
            continue
        checked += 1
        if not os.path.exists(artifact):
            failures.append(
                f"PR {number}: BENCH_pr{number}.json is missing and its "
                "CHANGES.md line carries no 'no bench artifact' / "
                "'bench artifact lost' marker"
            )
            continue
        if os.path.getsize(artifact) == 0:
            failures.append(f"PR {number}: BENCH_pr{number}.json is empty")
            continue
        try:
            with open(artifact, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"WARN: PR {number}: BENCH_pr{number}.json does not parse "
                f"({error}) — legacy truncation, kept as-is",
                file=sys.stderr,
            )
            continue
        if not data.get("benchmarks"):
            failures.append(f"PR {number}: BENCH_pr{number}.json has no benchmark rows")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"bench artifacts OK ({checked} artifacts checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
