#!/usr/bin/env python3
"""CI band check for the SIMD cost model (DESIGN.md §13).

Reads a google-benchmark JSON artifact and verifies every BM_Simd* row's
predicted_over_measured counter lies inside a deliberately generous band.
The analytical models in src/simd/cost_model.cc are first-order — the band
is an honesty check that kernels and models drift together, not a
cycle-accuracy gate. Rows with ratio 0 (no TSC on the host) are skipped.

Usage: check_simd_band.py BENCH_JSON [LO HI]
"""

import json
import sys

DEFAULT_LO, DEFAULT_HI = 0.05, 20.0


def main() -> int:
    if len(sys.argv) not in (2, 4):
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    lo, hi = (
        (float(sys.argv[2]), float(sys.argv[3]))
        if len(sys.argv) == 4
        else (DEFAULT_LO, DEFAULT_HI)
    )
    with open(path) as f:
        data = json.load(f)

    failures = []
    rows = 0
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_Simd"):
            continue
        ratio = bench.get("predicted_over_measured")
        if ratio is None:
            failures.append((name, "missing predicted_over_measured counter"))
            continue
        rows += 1
        if ratio == 0:
            print(f"SKIP {name}: no cycle counter on this host")
            continue
        if not lo <= ratio <= hi:
            failures.append(
                (name, f"predicted/measured {ratio:.4f} outside [{lo}, {hi}]")
            )
        else:
            print(f"OK   {name}: predicted/measured {ratio:.4f}")

    if rows == 0:
        failures.append(("BM_Simd*", "no rows in artifact — family not run?"))
    for name, why in failures:
        print(f"FAIL {name}: {why}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
